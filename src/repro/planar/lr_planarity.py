"""From-scratch left-right planarity test with an embedding phase.

This module is the reproduction's stand-in for the Hopcroft-Tarjan
planarity algorithm [HT74] that the paper cites as the centralized
counterpart of its contribution.  It implements the left-right (also
known as de Fraysseix-Rosenstiehl) planarity criterion in the formulation
of Brandes' lecture notes ("The left-right planarity test"), including the
embedding phase, so that a planar input yields a full rotation system.

The algorithm runs in three DFS passes over an orientation of the graph:

1. *Orientation* - root a DFS forest, classify edges as tree/back edges,
   and compute ``lowpt``/``lowpt2``/``nesting_depth`` per directed edge.
2. *Testing* - process outgoing edges in nesting order while maintaining a
   stack of conflict pairs (intervals of return edges that must go to the
   same side); a forced left-left/right-right conflict proves K5/K3,3.
3. *Embedding* - resolve the relative sides via the ``ref``/``side``
   relation, re-sort adjacencies by signed nesting depth, and emit a
   rotation system by splicing back edges next to the correct reference
   half-edges.

All passes are iterative (no Python recursion) so graphs far beyond the
interpreter's recursion limit embed fine.  The test-suite cross-validates
this module against ``networkx.check_planarity`` on thousands of random
graphs; inside the library it is the *only* planarity kernel.

CONGEST context: nodes have unbounded local computation, so the
distributed algorithm's coordinators may run this kernel locally on the
(small, summarized) instances they gather; see ``repro.core.merges``.
"""

from __future__ import annotations

from .graph import Graph, NodeId
from .rotation import RotationSystem

__all__ = [
    "NonPlanarGraphError",
    "lr_planarity",
    "planar_embedding",
    "is_planar",
]


class NonPlanarGraphError(ValueError):
    """Raised when an embedding is requested for a non-planar graph."""


def is_planar(graph: Graph) -> bool:
    """True iff ``graph`` is planar."""
    return lr_planarity(graph) is not None


def planar_embedding(graph: Graph) -> RotationSystem:
    """A combinatorial planar embedding of ``graph``.

    Raises :class:`NonPlanarGraphError` when the graph is not planar.
    """
    rotation = lr_planarity(graph)
    if rotation is None:
        raise NonPlanarGraphError(
            f"graph with {graph.num_nodes} nodes / {graph.num_edges} edges is not planar"
        )
    return rotation


def lr_planarity(graph: Graph) -> RotationSystem | None:
    """Left-right planarity test; a rotation system, or ``None`` if non-planar."""
    return _LRPlanarity(graph).run()


class _Interval:
    """An interval of return edges, empty when both ends are ``None``."""

    __slots__ = ("low", "high")

    def __init__(self, low=None, high=None) -> None:
        self.low = low
        self.high = high

    def empty(self) -> bool:
        return self.low is None and self.high is None

    def copy(self) -> "_Interval":
        return _Interval(self.low, self.high)


class _ConflictPair:
    """A left/right pair of return-edge intervals on the constraint stack."""

    __slots__ = ("left", "right")

    def __init__(self, left: _Interval | None = None, right: _Interval | None = None) -> None:
        self.left = left if left is not None else _Interval()
        self.right = right if right is not None else _Interval()

    def swap(self) -> None:
        self.left, self.right = self.right, self.left

    def lowest(self, state: "_LRPlanarity") -> int:
        if self.left.empty():
            return state.lowpt[self.right.low]
        if self.right.empty():
            return state.lowpt[self.left.low]
        return min(state.lowpt[self.left.low], state.lowpt[self.right.low])


def _top(stack: list) -> _ConflictPair | None:
    return stack[-1] if stack else None


class _EmbeddingBuilder:
    """Half-edge rings under construction: per-vertex circular cw lists."""

    __slots__ = ("next_cw", "next_ccw", "first")

    def __init__(self) -> None:
        self.next_cw: dict[NodeId, dict[NodeId, NodeId]] = {}
        self.next_ccw: dict[NodeId, dict[NodeId, NodeId]] = {}
        self.first: dict[NodeId, NodeId | None] = {}

    def add_node(self, v: NodeId) -> None:
        self.next_cw.setdefault(v, {})
        self.next_ccw.setdefault(v, {})
        self.first.setdefault(v, None)

    def _add_lonely(self, v: NodeId, w: NodeId) -> None:
        self.next_cw[v][w] = w
        self.next_ccw[v][w] = w
        self.first[v] = w

    def add_half_edge_cw(self, v: NodeId, w: NodeId, ref: NodeId | None) -> None:
        """Insert half-edge ``v -> w`` clockwise-after ``ref`` at ``v``."""
        if ref is None:
            self._add_lonely(v, w)
            return
        after = self.next_cw[v][ref]
        self.next_cw[v][ref] = w
        self.next_cw[v][w] = after
        self.next_ccw[v][after] = w
        self.next_ccw[v][w] = ref

    def add_half_edge_ccw(self, v: NodeId, w: NodeId, ref: NodeId | None) -> None:
        """Insert half-edge ``v -> w`` counter-clockwise-after ``ref`` at ``v``."""
        if ref is None:
            self._add_lonely(v, w)
            return
        self.add_half_edge_cw(v, w, self.next_ccw[v][ref])
        if ref == self.first[v]:
            self.first[v] = w

    def add_half_edge_first(self, v: NodeId, w: NodeId) -> None:
        """Insert ``v -> w`` so that ``w`` becomes the first neighbor of ``v``."""
        self.add_half_edge_ccw(v, w, self.first[v])
        self.first[v] = w

    def rotation_of(self, v: NodeId) -> tuple[NodeId, ...]:
        start = self.first[v]
        if start is None:
            return ()
        ring = [start]
        cur = self.next_cw[v][start]
        while cur != start:
            ring.append(cur)
            cur = self.next_cw[v][cur]
        return tuple(ring)


class _LRPlanarity:
    """State machine for one left-right planarity run."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.roots: list[NodeId] = []
        self.height: dict[NodeId, int | None] = {v: None for v in graph.nodes()}
        # Per *directed* edge (tuples (u, v)):
        self.lowpt: dict[tuple, int] = {}
        self.lowpt2: dict[tuple, int] = {}
        self.nesting_depth: dict[tuple, int] = {}
        self.parent_edge: dict[NodeId, tuple | None] = {v: None for v in graph.nodes()}
        self.oriented: set[tuple] = set()
        self.out_adj: dict[NodeId, list[NodeId]] = {v: [] for v in graph.nodes()}
        self.ordered_adjs: dict[NodeId, list[NodeId]] = {}
        self.ref: dict[tuple, tuple | None] = {}
        self.side: dict[tuple, int] = {}
        self.S: list[_ConflictPair] = []
        self.stack_bottom: dict[tuple, _ConflictPair | None] = {}
        self.lowpt_edge: dict[tuple, tuple] = {}
        self.left_ref: dict[NodeId, NodeId] = {}
        self.right_ref: dict[NodeId, NodeId] = {}
        self.embedding = _EmbeddingBuilder()

    def run(self) -> RotationSystem | None:
        graph = self.graph
        n = graph.num_nodes
        if n > 2 and graph.num_edges > 3 * n - 6:
            return None  # violates the planar edge bound

        # Pass 1: orientation.
        for v in graph.nodes():
            if self.height[v] is None:
                self.height[v] = 0
                self.roots.append(v)
                self._dfs_orientation(v)

        # Pass 2: testing.
        for v in graph.nodes():
            self.ordered_adjs[v] = sorted(
                self.out_adj[v], key=lambda w: self.nesting_depth[(v, w)]
            )
        for root in self.roots:
            if not self._dfs_testing(root):
                return None

        # Pass 3: embedding.
        for v in graph.nodes():
            for w in self.out_adj[v]:
                e = (v, w)
                self.nesting_depth[e] = self._sign(e) * self.nesting_depth[e]
        for v in graph.nodes():
            self.embedding.add_node(v)
            self.ordered_adjs[v] = sorted(
                self.out_adj[v], key=lambda w: self.nesting_depth[(v, w)]
            )
            previous = None
            for w in self.ordered_adjs[v]:
                self.embedding.add_half_edge_cw(v, w, previous)
                previous = w
        for root in self.roots:
            self._dfs_embedding(root)

        order = {v: self.embedding.rotation_of(v) for v in graph.nodes()}
        return RotationSystem(graph, order)

    # -- pass 1 -----------------------------------------------------------

    def _dfs_orientation(self, start: NodeId) -> None:
        dfs_stack = [start]
        ind: dict[NodeId, int] = {}
        skip_init: set[tuple] = set()

        while dfs_stack:
            v = dfs_stack.pop()
            e = self.parent_edge[v]
            adjacency = self.graph.neighbors(v)
            descend = False
            i = ind.get(v, 0)
            while i < len(adjacency):
                w = adjacency[i]
                vw = (v, w)
                if vw not in skip_init:
                    if vw in self.oriented or (w, v) in self.oriented:
                        i += 1
                        continue
                    self.oriented.add(vw)
                    self.out_adj[v].append(w)
                    self.ref[vw] = None
                    self.side[vw] = 1
                    self.lowpt[vw] = self.height[v]
                    self.lowpt2[vw] = self.height[v]
                    if self.height[w] is None:  # tree edge
                        self.parent_edge[w] = vw
                        self.height[w] = self.height[v] + 1
                        ind[v] = i
                        dfs_stack.append(v)  # resume v afterwards
                        dfs_stack.append(w)
                        skip_init.add(vw)
                        descend = True
                        break
                    self.lowpt[vw] = self.height[w]  # back edge

                # nesting depth: twice the lowpoint, +1 if chordal
                self.nesting_depth[vw] = 2 * self.lowpt[vw]
                if self.lowpt2[vw] < self.height[v]:
                    self.nesting_depth[vw] += 1

                if e is not None:  # fold lowpoints into the parent edge
                    if self.lowpt[vw] < self.lowpt[e]:
                        self.lowpt2[e] = min(self.lowpt[e], self.lowpt2[vw])
                        self.lowpt[e] = self.lowpt[vw]
                    elif self.lowpt[vw] > self.lowpt[e]:
                        self.lowpt2[e] = min(self.lowpt2[e], self.lowpt[vw])
                    else:
                        self.lowpt2[e] = min(self.lowpt2[e], self.lowpt2[vw])
                i += 1
            if not descend:
                ind[v] = i

    # -- pass 2 -----------------------------------------------------------

    def _dfs_testing(self, start: NodeId) -> bool:
        dfs_stack = [start]
        ind: dict[NodeId, int] = {}
        skip_init: set[tuple] = set()

        while dfs_stack:
            v = dfs_stack.pop()
            e = self.parent_edge[v]
            adjacency = self.ordered_adjs[v]
            descend = False
            i = ind.get(v, 0)
            while i < len(adjacency):
                w = adjacency[i]
                ei = (v, w)
                if ei not in skip_init:
                    self.stack_bottom[ei] = _top(self.S)
                    if ei == self.parent_edge[w]:  # tree edge: recurse first
                        ind[v] = i
                        dfs_stack.append(v)
                        dfs_stack.append(w)
                        skip_init.add(ei)
                        descend = True
                        break
                    # back edge: its own one-element right interval
                    self.lowpt_edge[ei] = ei
                    self.S.append(_ConflictPair(right=_Interval(ei, ei)))

                # integrate the return edges contributed by ei
                if self.lowpt[ei] < self.height[v]:
                    if w == adjacency[0]:
                        self.lowpt_edge[e] = self.lowpt_edge[ei]
                    elif not self._add_constraints(ei, e):
                        return False  # forced same-side conflict: non-planar
                i += 1
            if descend:
                continue
            ind[v] = i
            if e is not None:
                self._remove_back_edges(e)
        return True

    def _conflicting(self, interval: _Interval, b: tuple) -> bool:
        return not interval.empty() and self.lowpt[interval.high] > self.lowpt[b]

    def _add_constraints(self, ei: tuple, e: tuple) -> bool:
        P = _ConflictPair()
        # merge return edges of ei into P.right
        while True:
            Q = self.S.pop()
            if not Q.left.empty():
                Q.swap()
            if not Q.left.empty():
                return False
            if self.lowpt[Q.right.low] > self.lowpt[e]:
                if P.right.empty():
                    P.right.high = Q.right.high
                else:
                    self.ref[P.right.low] = Q.right.high
                P.right.low = Q.right.low
            else:  # align with the parent's lowpoint edge
                self.ref[Q.right.low] = self.lowpt_edge[e]
            if _top(self.S) is self.stack_bottom[ei]:
                break
        # merge conflicting return edges of earlier siblings into P.left
        while self._conflicting(_top(self.S).left, ei) or self._conflicting(
            _top(self.S).right, ei
        ):
            Q = self.S.pop()
            if self._conflicting(Q.right, ei):
                Q.swap()
            if self._conflicting(Q.right, ei):
                return False
            self.ref[P.right.low] = Q.right.high
            if Q.right.low is not None:
                P.right.low = Q.right.low
            if P.left.empty():
                P.left.high = Q.left.high
            else:
                self.ref[P.left.low] = Q.left.high
            P.left.low = Q.left.low
        if not (P.left.empty() and P.right.empty()):
            self.S.append(P)
        return True

    def _remove_back_edges(self, e: tuple) -> None:
        u = e[0]
        # drop entire conflict pairs whose lowest return point is u
        while self.S and _top(self.S).lowest(self) == self.height[u]:
            P = self.S.pop()
            if P.left.low is not None:
                self.side[P.left.low] = -1
        if self.S:  # one more pair may need trimming
            P = self.S.pop()
            while P.left.high is not None and P.left.high[1] == u:
                P.left.high = self.ref[P.left.high]
            if P.left.high is None and P.left.low is not None:
                self.ref[P.left.low] = P.right.low
                self.side[P.left.low] = -1
                P.left.low = None
            while P.right.high is not None and P.right.high[1] == u:
                P.right.high = self.ref[P.right.high]
            if P.right.high is None and P.right.low is not None:
                self.ref[P.right.low] = P.left.low
                self.side[P.right.low] = -1
                P.right.low = None
            self.S.append(P)
        # the side of e follows the side of its highest return edge
        if self.lowpt[e] < self.height[u]:
            top = _top(self.S)
            hl = top.left.high
            hr = top.right.high
            if hl is not None and (hr is None or self.lowpt[hl] > self.lowpt[hr]):
                self.ref[e] = hl
            else:
                self.ref[e] = hr

    # -- pass 3 -----------------------------------------------------------

    def _sign(self, e: tuple) -> int:
        """Resolve the absolute side of ``e`` along its ``ref`` chain."""
        dfs_stack = [e]
        old_ref: dict[tuple, tuple] = {}
        while dfs_stack:
            cur = dfs_stack.pop()
            if self.ref[cur] is not None:
                dfs_stack.append(cur)
                dfs_stack.append(self.ref[cur])
                old_ref[cur] = self.ref[cur]
                self.ref[cur] = None
            elif cur in old_ref:
                self.side[cur] *= self.side[old_ref[cur]]
        return self.side[e]

    def _dfs_embedding(self, start: NodeId) -> None:
        dfs_stack = [start]
        ind: dict[NodeId, int] = {}

        while dfs_stack:
            v = dfs_stack.pop()
            adjacency = self.ordered_adjs[v]
            i = ind.get(v, 0)
            while i < len(adjacency):
                w = adjacency[i]
                i += 1
                ei = (v, w)
                if ei == self.parent_edge[w]:  # tree edge
                    self.embedding.add_half_edge_first(w, v)
                    self.left_ref[v] = w
                    self.right_ref[v] = w
                    ind[v] = i
                    dfs_stack.append(v)
                    dfs_stack.append(w)
                    break
                # back edge: splice next to the reference half-edge at w
                if self.side[ei] == 1:
                    self.embedding.add_half_edge_cw(w, v, self.right_ref[w])
                else:
                    self.embedding.add_half_edge_ccw(w, v, self.left_ref[w])
                    self.left_ref[w] = v
            else:
                ind[v] = i
