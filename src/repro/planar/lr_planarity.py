"""From-scratch left-right planarity test with an embedding phase.

This module is the reproduction's stand-in for the Hopcroft-Tarjan
planarity algorithm [HT74] that the paper cites as the centralized
counterpart of its contribution.  It implements the left-right (also
known as de Fraysseix-Rosenstiehl) planarity criterion in the formulation
of Brandes' lecture notes ("The left-right planarity test"), including the
embedding phase, so that a planar input yields a full rotation system.

The algorithm runs in three DFS passes over an orientation of the graph:

1. *Orientation* - root a DFS forest, classify edges as tree/back edges,
   and compute ``lowpt``/``lowpt2``/``nesting_depth`` per directed edge.
2. *Testing* - process outgoing edges in nesting order while maintaining a
   stack of conflict pairs (intervals of return edges that must go to the
   same side); a forced left-left/right-right conflict proves K5/K3,3.
3. *Embedding* - resolve the relative sides via the ``ref``/``side``
   relation, re-sort adjacencies by signed nesting depth, and emit a
   rotation system by splicing back edges next to the correct reference
   half-edges.

All passes are iterative (no Python recursion) so graphs far beyond the
interpreter's recursion limit embed fine.  The test-suite cross-validates
this module against ``networkx.check_planarity`` on thousands of random
graphs; inside the library it is the *only* planarity kernel.

Internally the input is relabeled to integers ``0..n-1`` in node
insertion order and a directed edge ``(v, w)`` is encoded as the integer
``v * n + w``, so every per-edge map is keyed by small ints instead of
tuples of (often nested-tuple) node identifiers.  The relabeling is
order-preserving — adjacency lists keep their insertion order, and the
nesting-depth sorts are stable — so the emitted rotation system is
exactly the one the algorithm would produce on the original labels.

Callers that only need the verdict (e.g. the scoped split-validation
oracle) can use :func:`lr_is_planar`, which runs the orientation and
testing passes and skips the embedding phase entirely.

CONGEST context: nodes have unbounded local computation, so the
distributed algorithm's coordinators may run this kernel locally on the
(small, summarized) instances they gather; see ``repro.core.merges``.
"""

from __future__ import annotations

from .graph import Graph, NodeId
from .rotation import RotationSystem

__all__ = [
    "NonPlanarGraphError",
    "lr_planarity",
    "lr_is_planar",
    "planar_embedding",
    "is_planar",
]


class NonPlanarGraphError(ValueError):
    """Raised when an embedding is requested for a non-planar graph."""


# Structural memoization: the solver relabels nodes to ``0..n-1`` in
# insertion order, and every pass afterwards is a pure function of the
# relabeled adjacency structure ``tuple(tuple(ints), ...)``.  Two graphs
# with the same structure therefore get the same verdict and the same
# int-level rotations — only the final int->node mapping differs.  The
# recursion embeds thousands of small parts (leaf stars, short paths,
# repeated realization gadgets) that collide on structure constantly, so
# both the verdict and the embedding are cached per structure.  Caches
# are cleared wholesale when full, like ``interface._BLOCK_ORDER_MEMO``.
_MEMO_MISS = object()
_DECIDE_MEMO: dict[tuple, bool] = {}
_EMBED_MEMO: dict[tuple, tuple[tuple[int, ...], ...] | None] = {}
_MEMO_MAX_ENTRIES = 1 << 12


def clear_caches() -> None:
    """Drop the structural memo tables.

    The memos are process-global pure caches (verdicts and int-level
    rotations keyed by relabeled structure), so sharing them is always
    *correct* — but a forked shard worker should start from an empty,
    process-private state rather than a copy-on-write snapshot of the
    parent's tables.  Worker initializers call this via
    :func:`repro.shard.caches.clear_caches`.
    """
    _DECIDE_MEMO.clear()
    _EMBED_MEMO.clear()


def _memo_decide(graph: Graph) -> bool:
    solver = _LRPlanarity(graph)
    key = tuple(map(tuple, solver.adj))
    verdict = _DECIDE_MEMO.get(key)
    if verdict is None:
        embedded = _EMBED_MEMO.get(key, _MEMO_MISS)
        if embedded is not _MEMO_MISS:
            verdict = embedded is not None
        else:
            verdict = solver.decide()
        if len(_DECIDE_MEMO) >= _MEMO_MAX_ENTRIES:
            _DECIDE_MEMO.clear()
        _DECIDE_MEMO[key] = verdict
    return verdict


def is_planar(graph: Graph) -> bool:
    """True iff ``graph`` is planar (decision only; no embedding built)."""
    return _memo_decide(graph)


def lr_is_planar(graph: Graph) -> bool:
    """Decision-only left-right test: orientation + testing passes.

    Identical verdict to ``lr_planarity(graph) is not None`` (the
    embedding pass never changes the outcome) at roughly two thirds of
    the cost; use it wherever the rotation system itself is not needed.
    """
    return _memo_decide(graph)


def planar_embedding(graph: Graph) -> RotationSystem:
    """A combinatorial planar embedding of ``graph``.

    Raises :class:`NonPlanarGraphError` when the graph is not planar.
    """
    rotation = lr_planarity(graph)
    if rotation is None:
        raise NonPlanarGraphError(
            f"graph with {graph.num_nodes} nodes / {graph.num_edges} edges is not planar"
        )
    return rotation


def lr_planarity(graph: Graph) -> RotationSystem | None:
    """Left-right planarity test; a rotation system, or ``None`` if non-planar."""
    solver = _LRPlanarity(graph)
    key = tuple(map(tuple, solver.adj))
    rings = _EMBED_MEMO.get(key, _MEMO_MISS)
    if rings is _MEMO_MISS:
        rings = solver.int_rotations()
        if len(_EMBED_MEMO) >= _MEMO_MAX_ENTRIES:
            _EMBED_MEMO.clear()
        _EMBED_MEMO[key] = rings
    if rings is None:
        return None
    nodes = solver.nodes
    order = {
        nodes[v]: tuple(nodes[w] for w in ring) for v, ring in enumerate(rings)
    }
    return RotationSystem.trusted(graph, order)


class _Interval:
    """An interval of return edges, empty when both ends are ``None``."""

    __slots__ = ("low", "high")

    def __init__(self, low=None, high=None) -> None:
        self.low = low
        self.high = high

    def empty(self) -> bool:
        return self.low is None and self.high is None

    def copy(self) -> "_Interval":
        return _Interval(self.low, self.high)


class _ConflictPair:
    """A left/right pair of return-edge intervals on the constraint stack."""

    __slots__ = ("left", "right")

    def __init__(self, left: _Interval | None = None, right: _Interval | None = None) -> None:
        self.left = left if left is not None else _Interval()
        self.right = right if right is not None else _Interval()

    def swap(self) -> None:
        self.left, self.right = self.right, self.left

    def lowest(self, state: "_LRPlanarity") -> int:
        if self.left.empty():
            return state.lowpt[self.right.low]
        if self.right.empty():
            return state.lowpt[self.left.low]
        return min(state.lowpt[self.left.low], state.lowpt[self.right.low])


def _top(stack: list) -> _ConflictPair | None:
    return stack[-1] if stack else None


class _EmbeddingBuilder:
    """Half-edge rings under construction: per-vertex circular cw lists.

    Vertices are the relabeled integers ``0..n-1``.
    """

    __slots__ = ("next_cw", "next_ccw", "first")

    def __init__(self, n: int) -> None:
        self.next_cw: list[dict[int, int]] = [{} for _ in range(n)]
        self.next_ccw: list[dict[int, int]] = [{} for _ in range(n)]
        self.first: list[int | None] = [None] * n

    def _add_lonely(self, v: NodeId, w: NodeId) -> None:
        self.next_cw[v][w] = w
        self.next_ccw[v][w] = w
        self.first[v] = w

    def add_half_edge_cw(self, v: NodeId, w: NodeId, ref: NodeId | None) -> None:
        """Insert half-edge ``v -> w`` clockwise-after ``ref`` at ``v``."""
        if ref is None:
            self._add_lonely(v, w)
            return
        after = self.next_cw[v][ref]
        self.next_cw[v][ref] = w
        self.next_cw[v][w] = after
        self.next_ccw[v][after] = w
        self.next_ccw[v][w] = ref

    def add_half_edge_ccw(self, v: NodeId, w: NodeId, ref: NodeId | None) -> None:
        """Insert half-edge ``v -> w`` counter-clockwise-after ``ref`` at ``v``."""
        if ref is None:
            self._add_lonely(v, w)
            return
        self.add_half_edge_cw(v, w, self.next_ccw[v][ref])
        if ref == self.first[v]:
            self.first[v] = w

    def add_half_edge_first(self, v: NodeId, w: NodeId) -> None:
        """Insert ``v -> w`` so that ``w`` becomes the first neighbor of ``v``."""
        self.add_half_edge_ccw(v, w, self.first[v])
        self.first[v] = w

    def rotation_of(self, v: NodeId) -> tuple[NodeId, ...]:
        start = self.first[v]
        if start is None:
            return ()
        ring = [start]
        cur = self.next_cw[v][start]
        while cur != start:
            ring.append(cur)
            cur = self.next_cw[v][cur]
        return tuple(ring)


class _LRPlanarity:
    """State machine for one left-right planarity run.

    Works on the integer relabeling described in the module docstring:
    vertex ``i`` is ``graph.nodes()[i]`` and the directed edge
    ``(v, w)`` is the int ``v * n + w``.  Node-indexed state lives in
    flat lists; edge-indexed state in int-keyed dicts.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        nodes = graph.nodes()
        n = len(nodes)
        self.nodes = nodes
        self.n = n
        index = {u: i for i, u in enumerate(nodes)}
        self.adj: list[list[int]] = [
            [index[w] for w in graph._adj[u]] for u in nodes
        ]
        self.roots: list[int] = []
        self.height: list[int | None] = [None] * n
        self.parent_edge: list[int | None] = [None] * n
        # Per *directed* edge (int codes v * n + w):
        self.lowpt: dict[int, int] = {}
        self.lowpt2: dict[int, int] = {}
        self.nesting_depth: dict[int, int] = {}
        self.oriented: set[int] = set()
        self.out_adj: list[list[int]] = [[] for _ in range(n)]
        self.ordered_adjs: list[list[int]] = [[] for _ in range(n)]
        self.ref: dict[int, int | None] = {}
        self.side: dict[int, int] = {}
        self.S: list[_ConflictPair] = []
        self.stack_bottom: dict[int, _ConflictPair | None] = {}
        self.lowpt_edge: dict[int, int] = {}

    def _ordered_out_adj(self, v: int) -> list[int]:
        """``out_adj[v]`` stably sorted by nesting depth (cheap int keys)."""
        base = v * self.n
        nesting_depth = self.nesting_depth
        decorated = sorted(
            (nesting_depth[base + w], i, w) for i, w in enumerate(self.out_adj[v])
        )
        return [w for _, _, w in decorated]

    def decide(self) -> bool:
        """Passes 1 + 2 only: True iff the graph is planar."""
        graph = self.graph
        n = self.n
        if n > 2 and graph.num_edges > 3 * n - 6:
            return False  # violates the planar edge bound

        # Pass 1: orientation.
        for v in range(n):
            if self.height[v] is None:
                self.height[v] = 0
                self.roots.append(v)
                self._dfs_orientation(v)

        # Pass 2: testing.
        for v in range(n):
            self.ordered_adjs[v] = self._ordered_out_adj(v)
        for root in self.roots:
            if not self._dfs_testing(root):
                return False
        return True

    def run(self) -> RotationSystem | None:
        rings = self.int_rotations()
        if rings is None:
            return None
        nodes = self.nodes
        order = {
            nodes[v]: tuple(nodes[w] for w in ring)
            for v, ring in enumerate(rings)
        }
        return RotationSystem.trusted(self.graph, order)

    def int_rotations(self) -> tuple[tuple[int, ...], ...] | None:
        """Per-vertex clockwise rings over the int relabeling (or None).

        This is the whole algorithm minus the final int->node mapping; a
        pure function of ``self.adj``, which is what makes the module's
        structural memo sound.
        """
        if not self.decide():
            return None

        # Pass 3: embedding.
        n = self.n
        nesting_depth = self.nesting_depth
        sign = self._sign
        for v in range(n):
            base = v * n
            for w in self.out_adj[v]:
                e = base + w
                nesting_depth[e] = sign(e) * nesting_depth[e]
        embedding = self.embedding = _EmbeddingBuilder(n)
        add_half_edge_cw = embedding.add_half_edge_cw
        for v in range(n):
            ordered = self._ordered_out_adj(v)
            self.ordered_adjs[v] = ordered
            previous = None
            for w in ordered:
                add_half_edge_cw(v, w, previous)
                previous = w
        self.left_ref: list[int | None] = [None] * n
        self.right_ref: list[int | None] = [None] * n
        for root in self.roots:
            self._dfs_embedding(root)

        return tuple(embedding.rotation_of(v) for v in range(n))

    # -- pass 1 -----------------------------------------------------------

    def _dfs_orientation(self, start: int) -> None:
        n = self.n
        height = self.height
        parent_edge = self.parent_edge
        lowpt = self.lowpt
        lowpt2 = self.lowpt2
        nesting_depth = self.nesting_depth
        oriented = self.oriented
        out_adj = self.out_adj
        ref = self.ref
        side = self.side
        adj = self.adj
        dfs_stack = [start]
        ind: dict[int, int] = {}
        skip_init: set[int] = set()

        while dfs_stack:
            v = dfs_stack.pop()
            e = parent_edge[v]
            adjacency = adj[v]
            base = v * n
            hv = height[v]
            descend = False
            i = ind.get(v, 0)
            while i < len(adjacency):
                w = adjacency[i]
                vw = base + w
                if vw not in skip_init:
                    if vw in oriented or w * n + v in oriented:
                        i += 1
                        continue
                    oriented.add(vw)
                    out_adj[v].append(w)
                    ref[vw] = None
                    side[vw] = 1
                    lowpt[vw] = hv
                    lowpt2[vw] = hv
                    if height[w] is None:  # tree edge
                        parent_edge[w] = vw
                        height[w] = hv + 1
                        ind[v] = i
                        dfs_stack.append(v)  # resume v afterwards
                        dfs_stack.append(w)
                        skip_init.add(vw)
                        descend = True
                        break
                    lowpt[vw] = height[w]  # back edge

                # nesting depth: twice the lowpoint, +1 if chordal
                nesting_depth[vw] = 2 * lowpt[vw] + (1 if lowpt2[vw] < hv else 0)

                if e is not None:  # fold lowpoints into the parent edge
                    lw = lowpt[vw]
                    le = lowpt[e]
                    if lw < le:
                        lowpt2[e] = min(le, lowpt2[vw])
                        lowpt[e] = lw
                    elif lw > le:
                        lowpt2[e] = min(lowpt2[e], lw)
                    else:
                        lowpt2[e] = min(lowpt2[e], lowpt2[vw])
                i += 1
            if not descend:
                ind[v] = i

    # -- pass 2 -----------------------------------------------------------

    def _dfs_testing(self, start: int) -> bool:
        n = self.n
        height = self.height
        parent_edge = self.parent_edge
        lowpt = self.lowpt
        lowpt_edge = self.lowpt_edge
        stack_bottom = self.stack_bottom
        S = self.S
        dfs_stack = [start]
        ind: dict[int, int] = {}
        skip_init: set[int] = set()

        while dfs_stack:
            v = dfs_stack.pop()
            e = parent_edge[v]
            adjacency = self.ordered_adjs[v]
            base = v * n
            hv = height[v]
            descend = False
            i = ind.get(v, 0)
            while i < len(adjacency):
                w = adjacency[i]
                ei = base + w
                if ei not in skip_init:
                    stack_bottom[ei] = S[-1] if S else None
                    if ei == parent_edge[w]:  # tree edge: recurse first
                        ind[v] = i
                        dfs_stack.append(v)
                        dfs_stack.append(w)
                        skip_init.add(ei)
                        descend = True
                        break
                    # back edge: its own one-element right interval
                    lowpt_edge[ei] = ei
                    S.append(_ConflictPair(right=_Interval(ei, ei)))

                # integrate the return edges contributed by ei
                if lowpt[ei] < hv:
                    if w == adjacency[0]:
                        lowpt_edge[e] = lowpt_edge[ei]
                    elif not self._add_constraints(ei, e):
                        return False  # forced same-side conflict: non-planar
                i += 1
            if descend:
                continue
            ind[v] = i
            if e is not None:
                self._remove_back_edges(e)
        return True

    def _conflicting(self, interval: _Interval, b: int) -> bool:
        return not interval.empty() and self.lowpt[interval.high] > self.lowpt[b]

    def _add_constraints(self, ei: int, e: int) -> bool:
        # Interval emptiness / conflict checks are inlined attribute tests
        # here (this is the innermost loop of the testing pass).
        lowpt = self.lowpt
        ref = self.ref
        S = self.S
        P = _ConflictPair()
        PL = P.left
        PR = P.right
        lp_e = lowpt[e]
        lp_ei = lowpt[ei]
        bottom = self.stack_bottom[ei]
        # merge return edges of ei into P.right
        while True:
            Q = S.pop()
            QL = Q.left
            if QL.low is not None or QL.high is not None:
                Q.swap()
                QL = Q.left
                if QL.low is not None or QL.high is not None:
                    return False
            QR = Q.right
            if lowpt[QR.low] > lp_e:
                if PR.low is None and PR.high is None:
                    PR.high = QR.high
                else:
                    ref[PR.low] = QR.high
                PR.low = QR.low
            else:  # align with the parent's lowpoint edge
                ref[QR.low] = self.lowpt_edge[e]
            if (S[-1] if S else None) is bottom:
                break
        # merge conflicting return edges of earlier siblings into P.left
        while True:
            top = S[-1]
            TL = top.left
            TR = top.right
            if not (
                (TL.high is not None and lowpt[TL.high] > lp_ei)
                or (TR.high is not None and lowpt[TR.high] > lp_ei)
            ):
                break
            Q = S.pop()
            QR = Q.right
            if QR.high is not None and lowpt[QR.high] > lp_ei:
                Q.swap()
                QR = Q.right
                if QR.high is not None and lowpt[QR.high] > lp_ei:
                    return False
            QL = Q.left
            ref[PR.low] = QR.high
            if QR.low is not None:
                PR.low = QR.low
            if PL.low is None and PL.high is None:
                PL.high = QL.high
            else:
                ref[PL.low] = QL.high
            PL.low = QL.low
        if not (PL.low is None and PL.high is None and PR.low is None and PR.high is None):
            S.append(P)
        return True

    def _remove_back_edges(self, e: int) -> None:
        n = self.n
        u = e // n
        hu = self.height[u]
        lowpt = self.lowpt
        S = self.S
        # drop entire conflict pairs whose lowest return point is u
        while S:
            top = S[-1]
            L = top.left
            if L.low is None and L.high is None:
                lowest = lowpt[top.right.low]
            else:
                R = top.right
                if R.low is None and R.high is None:
                    lowest = lowpt[L.low]
                else:
                    lowest = min(lowpt[L.low], lowpt[R.low])
            if lowest != hu:
                break
            P = S.pop()
            if P.left.low is not None:
                self.side[P.left.low] = -1
        if self.S:  # one more pair may need trimming
            P = self.S.pop()
            while P.left.high is not None and P.left.high % n == u:
                P.left.high = self.ref[P.left.high]
            if P.left.high is None and P.left.low is not None:
                self.ref[P.left.low] = P.right.low
                self.side[P.left.low] = -1
                P.left.low = None
            while P.right.high is not None and P.right.high % n == u:
                P.right.high = self.ref[P.right.high]
            if P.right.high is None and P.right.low is not None:
                self.ref[P.right.low] = P.left.low
                self.side[P.right.low] = -1
                P.right.low = None
            self.S.append(P)
        # the side of e follows the side of its highest return edge
        if self.lowpt[e] < hu:
            top = _top(self.S)
            hl = top.left.high
            hr = top.right.high
            if hl is not None and (hr is None or self.lowpt[hl] > self.lowpt[hr]):
                self.ref[e] = hl
            else:
                self.ref[e] = hr

    # -- pass 3 -----------------------------------------------------------

    def _sign(self, e: int) -> int:
        """Resolve the absolute side of ``e`` along its ``ref`` chain."""
        ref = self.ref
        side = self.side
        dfs_stack = [e]
        old_ref: dict[int, int] = {}
        while dfs_stack:
            cur = dfs_stack.pop()
            nxt = ref[cur]
            if nxt is not None:
                dfs_stack.append(cur)
                dfs_stack.append(nxt)
                old_ref[cur] = nxt
                ref[cur] = None
            elif cur in old_ref:
                side[cur] *= side[old_ref[cur]]
        return side[e]

    def _dfs_embedding(self, start: int) -> None:
        n = self.n
        parent_edge = self.parent_edge
        side = self.side
        embedding = self.embedding
        left_ref = self.left_ref
        right_ref = self.right_ref
        dfs_stack = [start]
        ind: dict[int, int] = {}

        while dfs_stack:
            v = dfs_stack.pop()
            adjacency = self.ordered_adjs[v]
            base = v * n
            i = ind.get(v, 0)
            while i < len(adjacency):
                w = adjacency[i]
                i += 1
                ei = base + w
                if ei == parent_edge[w]:  # tree edge
                    embedding.add_half_edge_first(w, v)
                    left_ref[v] = w
                    right_ref[v] = w
                    ind[v] = i
                    dfs_stack.append(v)
                    dfs_stack.append(w)
                    break
                # back edge: splice next to the reference half-edge at w
                if side[ei] == 1:
                    embedding.add_half_edge_cw(w, v, right_ref[w])
                else:
                    embedding.add_half_edge_ccw(w, v, left_ref[w])
                    left_ref[w] = v
            else:
                ind[v] = i
