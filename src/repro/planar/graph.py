"""Lightweight simple-graph type with stable edge identifiers.

The paper (footnote 5) identifies an edge ``e = {u, v}`` by the pair
``ID(e) = (ID(u), ID(v))`` with ``ID(u) < ID(v)``.  Everything in this
reproduction uses the same convention, so edge identifiers are comparable
and orderable across the whole network without coordination, which the
distributed algorithm relies on (e.g. biconnected-component IDs are minimum
edge IDs).

The class is intentionally small: it is the substrate shared by the
centralized planar toolkit (:mod:`repro.planar`) and the CONGEST simulator
(:mod:`repro.congest`), not a general-purpose graph library.  ``networkx``
is deliberately not used anywhere inside the library; it appears only in
the test-suite as an independent oracle.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import TypeAlias

NodeId: TypeAlias = Hashable
EdgeId: TypeAlias = tuple

__all__ = ["Graph", "NodeId", "EdgeId", "edge_id", "sort_key", "GraphError"]


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


_SORT_KEY_CACHE: dict = {}
_SORT_KEY_MAX_ENTRIES = 1 << 16


def clear_caches() -> None:
    """Drop the sort-key cache (see ``repro.shard.caches.clear_caches``:
    forked workers start with process-private caches, not copy-on-write
    snapshots of the parent's)."""
    _SORT_KEY_CACHE.clear()


def sort_key(node: NodeId) -> str:
    """Canonical deterministic ordering key for nodes: cached ``repr``.

    ``sorted(nodes, key=sort_key)`` produces exactly the same order as
    ``sorted(nodes, key=repr)`` — the library-wide convention for
    ordering mixed real/pseudo vertices — but amortizes the string
    construction, which dominates the cost on the wrapped ``("v", id)``
    tuples used throughout the pipeline.  The cache is bounded (cleared
    when full, like :class:`~repro.congest.message.PayloadMeter`) and
    falls back to an uncached ``repr`` for unhashable nodes.
    """
    try:
        key = _SORT_KEY_CACHE.get(node)
    except TypeError:  # unhashable node: measure directly
        return repr(node)
    if key is None:
        key = repr(node)
        if len(_SORT_KEY_CACHE) >= _SORT_KEY_MAX_ENTRIES:
            _SORT_KEY_CACHE.clear()
        _SORT_KEY_CACHE[node] = key
    return key


def edge_id(u: NodeId, v: NodeId) -> EdgeId:
    """Return the canonical identifier of the undirected edge ``{u, v}``.

    Per the paper's footnote 5 the identifier is the ordered pair of the
    endpoint identifiers, smaller first.  When endpoint types are not
    mutually comparable (real vertices vs. pseudo-vertices such as
    half-edge stubs), the deterministic ``repr`` order substitutes — the
    convention only needs to be canonical, not numeric.
    """
    if u == v:
        raise GraphError(f"self-loops are not allowed: {u!r}")
    try:
        return (u, v) if u < v else (v, u)
    except TypeError:
        return (u, v) if repr(u) < repr(v) else (v, u)


class Graph:
    """An undirected simple graph with deterministic iteration order.

    Nodes may be any hashable, mutually comparable values.  Adjacency
    preserves insertion order, which keeps every algorithm in the library
    deterministic without extra sorting.
    """

    __slots__ = ("_adj",)

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Iterable[tuple[NodeId, NodeId]] = (),
    ) -> None:
        self._adj: dict[NodeId, dict[NodeId, None]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction ----------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        """Add ``node`` if not already present."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add the undirected edge ``{u, v}``, adding endpoints as needed.

        Parallel edges are silently coalesced (the graph is simple);
        self-loops raise :class:`GraphError`.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed: {u!r}")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = None
        self._adj[v][u] = None

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge ``{u, v}``; raise :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"no such edge: {u!r}-{v!r}")
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adj:
            raise GraphError(f"no such node: {node!r}")
        for neighbor in list(self._adj[node]):
            del self._adj[neighbor][node]
        del self._adj[node]

    def copy(self) -> "Graph":
        """Return an independent copy preserving iteration order."""
        clone = Graph()
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return clone

    # -- queries ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    def nodes(self) -> list[NodeId]:
        """All nodes in insertion order."""
        return list(self._adj)

    def edges(self) -> list[tuple[NodeId, NodeId]]:
        """Each undirected edge once, as its canonical ``edge_id`` pair."""
        seen: set[EdgeId] = set()
        result: list[tuple[NodeId, NodeId]] = []
        for u, nbrs in self._adj.items():
            for v in nbrs:
                eid = edge_id(u, v)
                if eid not in seen:
                    seen.add(eid)
                    result.append(eid)
        return result

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: NodeId) -> list[NodeId]:
        """Neighbors of ``node`` in insertion order."""
        if node not in self._adj:
            raise GraphError(f"no such node: {node!r}")
        return list(self._adj[node])

    def degree(self, node: NodeId) -> int:
        if node not in self._adj:
            raise GraphError(f"no such node: {node!r}")
        return len(self._adj[node])

    # -- derived graphs ---------------------------------------------------

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """The subgraph induced by ``nodes`` (which must all exist)."""
        keep = set(nodes)
        missing = keep - self._adj.keys()
        if missing:
            raise GraphError(f"nodes not in graph: {sorted(missing, key=repr)}")
        sub = Graph()
        for node in self._adj:
            if node in keep:
                sub.add_node(node)
        for node in sub.nodes():
            for neighbor in self._adj[node]:
                if neighbor in keep:
                    sub._adj[node][neighbor] = None
        return sub

    def connected_components(self) -> list[set[NodeId]]:
        """Connected components as node sets, in first-seen order."""
        seen: set[NodeId] = set()
        components: list[set[NodeId]] = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbor in self._adj[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            seen |= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True for the empty graph and any single-component graph."""
        return len(self.connected_components()) <= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
