"""Incremental re-certification: patch proof labels under edge churn.

The E14 prover rebuilds every label from scratch — election, BFS,
convergecast, O(D) rounds network-wide — even when a single edge changed
or a single label was corrupted.  This module makes certification
*incremental*:

* :func:`repair_certificates` — the post-heal repair used by
  ``self_healing_embedding``'s escalation ladder: starting from the
  verifier's rejecting nodes, re-prove only the dirty region (plus the
  one-hop closure the verifier audits), re-check it locally, and expand
  until the region is clean — falling back to a full rebuild when it
  exceeds ``fallback_ratio * n``;
* :class:`DynamicCertifiedEmbedding` — the dynamic-graph engine for the
  new churn workload: seeded edge inserts (splitting a shared face) and
  deletes (merging the two incident faces, re-hanging the certificate
  tree when a tree edge goes away) patch the rotation system *and* the
  proof labels in place, charging only the local patch + scoped
  re-verification instead of a fresh global pipeline.

**The dirty-region rule.**  A mutation at edge ``{u, v}`` invalidates
exactly (a) the dart labels on the face walks it touches (the split or
merged faces), (b) the subtree tallies on the tree paths from the
endpoints and the affected face leaders up to the root, (c) on a tree
edge deletion, the depths of the re-hung subtree, and (d) the announced
globals ``(m, f)`` everywhere — the root re-broadcasts totals, which is
a depth-bounded announce, not a rebuild.  Everything else is untouched,
and the CONGEST verifier's locality (one exchange per edge) means
re-checking the dirty closure plus its one-hop boundary is exactly as
convincing there as a full verification.

**Round accounting.**  Patches are omniscient-prover bookkeeping (like
the E14 face labels) but their distributed cost model is charged
explicitly to the ``certify:delta`` phase under a ``certify-delta``
span: one exchange round, a convergecast from the deepest dirty node,
and a root announce of the refreshed totals.  Fallback rebuilds run the
real E14 prover and pay its real rounds, so the bench comparison
(`bench_e21_compact.py`) races measured ledgers, not assumptions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from ..congest.faults import fault_override
from ..congest.message import word_bits
from ..congest.metrics import RoundMetrics
from ..obs import Tracer, maybe_span
from ..obs.causal import causal_override
from ..planar.graph import Graph, NodeId
from ..planar.rotation import RotationSystem
from .compact import CompactCertificateSet, encode_certificates, verify_compact
from .labels import CertificateSet, DartLabel
from .prover import build_certificates
from .verifier import CertificationReport, CertVerifierProgram, Rejection

__all__ = [
    "DEFAULT_FALLBACK_RATIO",
    "ChurnReport",
    "DynamicCertifiedEmbedding",
    "PatchRecord",
    "RepairOutcome",
    "repair_certificates",
]

# Above this fraction of dirty nodes an incremental patch stops being
# "local": the engine and the healer both fall back to the real E14
# prover (whose O(D) rounds are then charged honestly).
DEFAULT_FALLBACK_RATIO = 0.25


# -- scoped verification -----------------------------------------------------


def _local_rejections(
    graph: Graph,
    rotation: dict[NodeId, tuple],
    certs: CertificateSet,
    nodes: Iterable[NodeId],
) -> list[Rejection]:
    """Run the verifier's per-node decision offline for ``nodes``.

    Reuses :class:`CertVerifierProgram` verbatim — same predicates, same
    rejection surface — feeding each program the exact messages its
    neighbors would send.  No network, no rounds; callers charge the
    scoped exchange themselves.
    """
    out: list[Rejection] = []
    for v in sorted(nodes, key=repr):
        prog = CertVerifierProgram(
            v, graph.neighbors(v), certs.labels.get(v), tuple(rotation.get(v, ()))
        )
        for u in prog.neighbors:
            lab = certs.labels.get(u)
            dart = None
            if lab is not None and v in lab.darts:
                dart = lab.darts[v].encode()
            prog.received[u] = ("crt", lab.tree_fields() if lab is not None else None, dart)
        prog._decide()
        out.extend(Rejection(v, predicate, detail) for predicate, detail in prog.violations)
    return out


def _closure(graph: Graph, nodes: Iterable[NodeId]) -> set[NodeId]:
    closed = set()
    for v in nodes:
        if v in graph:
            closed.add(v)
            closed.update(graph.neighbors(v))
    return closed


def _reference_certificates(graph: Graph, rotation_system: RotationSystem) -> CertificateSet:
    """The omniscient prover's answer, with zero footprint.

    Built on a throwaway ledger with ambient chaos and causal recording
    suppressed: this is bookkeeping used to *source* patched label
    values, not a distributed execution — the distributed cost of the
    patch is charged explicitly by the callers.
    """
    with fault_override(None), causal_override(None):
        return build_certificates(graph, rotation_system, metrics=RoundMetrics())


# -- post-heal repair --------------------------------------------------------


@dataclass
class RepairOutcome:
    """What one :func:`repair_certificates` call did."""

    certificates: CertificateSet
    mode: str  # "patched" | "rebuilt"
    dirty: int  # nodes in the final dirty closure
    patched: int  # labels actually replaced
    rounds: int  # rounds charged for the repair
    sweeps: int = 0  # patch-and-recheck iterations


def repair_certificates(
    graph: Graph,
    rotation_system: RotationSystem,
    certificates: CertificateSet | None,
    dirty: Iterable[NodeId],
    *,
    metrics: RoundMetrics | None = None,
    tracer: Tracer | None = None,
    fallback_ratio: float = DEFAULT_FALLBACK_RATIO,
) -> RepairOutcome:
    """Re-prove only the dirty region of a rejected certificate set.

    ``dirty`` seeds the region (typically the verifier's rejecting
    nodes); the repair patches the one-hop closure from a reference
    proof, refreshes the announced globals everywhere (the root
    re-broadcasts totals), re-checks the patched region locally with the
    unchanged verifier predicates, and expands until clean.  When the
    region grows past ``fallback_ratio * n`` the real E14 prover rebuilds
    everything instead (its rounds land on the same ledger).
    """
    ledger = metrics if metrics is not None else RoundMetrics()
    if tracer is not None and ledger.observer is None:
        ledger.observer = tracer
    n = graph.num_nodes
    threshold = max(1, int(fallback_ratio * n))
    before = ledger.rounds

    def rebuild() -> RepairOutcome:
        rebuilt = build_certificates(graph, rotation_system, metrics=ledger, tracer=tracer)
        return RepairOutcome(
            certificates=rebuilt,
            mode="rebuilt",
            dirty=n,
            patched=n,
            rounds=ledger.rounds - before,
        )

    seed = _closure(graph, dirty)
    if certificates is None or not certificates.labels or len(seed) > threshold:
        return rebuild()

    with maybe_span(tracer, "certify-delta", kind="phase", n=n) as span:
        reference = _reference_certificates(graph, rotation_system)
        rotation = {v: rotation_system.order(v) for v in graph.nodes()}
        patched_set = certificates.copy()
        announced = next(iter(reference.labels.values()))
        patched_nodes: set[NodeId] = set()
        frontier = set(seed)
        sweeps = 0
        while frontier:
            sweeps += 1
            for v in frontier:
                patched_set.labels[v] = reference.labels[v].copy()
            patched_nodes |= frontier
            # The announce: every label carries the root's refreshed
            # global fields (costed inside the per-repair charge below).
            for lab in patched_set.labels.values():
                lab.root = announced.root
                lab.n = announced.n
                lab.m = announced.m
                lab.f = announced.f
            if len(patched_nodes) > threshold:
                if span is not None:
                    span.attrs["fallback"] = "region exceeded threshold"
                return rebuild()
            check = _closure(graph, patched_nodes)
            rejections = _local_rejections(graph, rotation, patched_set, check)
            frontier = _closure(graph, {r.node for r in rejections}) - patched_nodes

        depth_of = {v: lab.depth for v, lab in reference.labels.items()}
        up = max((depth_of.get(v, 0) for v in patched_nodes), default=0)
        announce = max(depth_of.values(), default=0)
        wbits = word_bits(max(1, n))
        compact = encode_certificates(graph, patched_set)
        bits = compact.size_bits()
        words = sum(-(-bits[v] // wbits) for v in patched_nodes)
        rounds = sweeps + up + announce
        ledger.charge(
            "certify:delta",
            rounds,
            words=words,
            detail=(
                f"patched {len(patched_nodes)}/{n} labels in {sweeps} sweep(s), "
                f"convergecast depth {up}, announce depth {announce}"
            ),
        )
        if span is not None:
            span.attrs["patched"] = len(patched_nodes)
            span.attrs["sweeps"] = sweeps
    return RepairOutcome(
        certificates=patched_set,
        mode="patched",
        dirty=len(_closure(graph, patched_nodes)),
        patched=len(patched_nodes),
        rounds=ledger.rounds - before,
        sweeps=sweeps,
    )


# -- the churn engine --------------------------------------------------------


@dataclass
class PatchRecord:
    """One mutation and what certifying it cost."""

    op: str  # "insert" | "delete"
    u: str  # repr of the endpoint (JSON-ready)
    v: str
    mode: str  # "patched" | "rebuild-cert" | "rebuild-embed"
    dirty: int  # nodes whose labels were touched
    rounds: int  # ledger rounds this op consumed (patch + verification)
    accepted: bool  # scoped (or full, on rebuild) verdict after the op

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "u": self.u,
            "v": self.v,
            "mode": self.mode,
            "dirty": self.dirty,
            "rounds": self.rounds,
            "accepted": self.accepted,
        }


@dataclass
class ChurnReport:
    """Outcome of one churn run: the op plan, per-op costs, final verdict."""

    plan: list[tuple[str, NodeId, NodeId]]
    records: list[PatchRecord]
    incremental: bool
    final_certification: CertificationReport
    stats: dict = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        return self.final_certification.accepted and all(r.accepted for r in self.records)

    @property
    def op_rounds(self) -> int:
        return sum(r.rounds for r in self.records)

    def mean_op_rounds(self) -> float:
        return self.op_rounds / len(self.records) if self.records else 0.0

    def to_dict(self) -> dict:
        return {
            "ops": len(self.records),
            "incremental": self.incremental,
            "accepted": self.accepted,
            "op_rounds": self.op_rounds,
            "op_rounds_mean": round(self.mean_op_rounds(), 2),
            "stats": dict(self.stats),
            "records": [r.to_dict() for r in self.records],
            "final_certification": self.final_certification.to_dict(),
        }


class DynamicCertifiedEmbedding:
    """A certified planar embedding that stays certified under churn.

    Owns a private copy of the graph, the live rotation system, the
    certificate tree (parent/depth/children read off the labels), and
    the proof labels themselves.  ``insert_edge`` splits the shared face
    of the endpoints; ``delete_edge`` merges the two incident faces
    (refusing bridges, which would disconnect the network) and re-hangs
    the certificate subtree when a tree edge disappears.  Each mutation
    patches only the dirty region and re-verifies it with the unchanged
    verifier predicates; ``incremental=False`` makes every op a full
    re-embed + re-certify, which is the bench's rebuild baseline.

    All rounds — the initial pipeline, per-op patches, scoped
    verifications, fallback rebuilds — accumulate on ``self.metrics``.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        incremental: bool = True,
        fallback_ratio: float = DEFAULT_FALLBACK_RATIO,
        bandwidth_words: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        if graph.num_nodes < 2:
            raise ValueError("churn needs at least two nodes")
        self.incremental = incremental
        self.fallback_ratio = fallback_ratio
        self.bandwidth_words = bandwidth_words
        self.tracer = tracer
        self.metrics = RoundMetrics()
        if tracer is not None:
            self.metrics.observer = tracer
        self.graph = graph.copy()
        self.rotation: dict[NodeId, tuple] = {}
        self.certs: CertificateSet | None = None
        self.compact: CompactCertificateSet | None = None
        self.last_certification: CertificationReport | None = None
        self.parent: dict[NodeId, NodeId | None] = {}
        self.depth: dict[NodeId, int] = {}
        self.children: dict[NodeId, list[NodeId]] = {}
        self.root: NodeId | None = None
        self.stats = {
            "ops": 0,
            "inserts": 0,
            "deletes": 0,
            "patched": 0,
            "cert_rebuilds": 0,
            "embed_rebuilds": 0,
        }
        self._rebuild_embed()

    # -- state maintenance -------------------------------------------------

    def _rebuild_embed(self) -> None:
        """Full pipeline on the current graph: embed, prove, track tree."""
        from ..core.algorithm import DistributedPlanarEmbedding

        driver = DistributedPlanarEmbedding(
            self.graph,
            bandwidth_words=self.bandwidth_words,
            verify=True,
            tracer=self.tracer,
            certify=False,
        )
        try:
            result = driver.run()
        finally:
            if driver.last_metrics is not None:
                self.metrics.absorb_serial(driver.last_metrics)
        self.rotation = {v: tuple(order) for v, order in result.rotation.items()}
        self.certs = build_certificates(
            self.graph, result.rotation_system, metrics=self.metrics, tracer=self.tracer
        )
        self._refresh_tree()

    def _rebuild_certificates(self) -> None:
        """Real E14 prover on the live rotation (rounds on the ledger)."""
        system = RotationSystem.trusted(self.graph, dict(self.rotation))
        self.certs = build_certificates(
            self.graph, system, metrics=self.metrics, tracer=self.tracer
        )
        self._refresh_tree()

    def _refresh_tree(self) -> None:
        labels = self.certs.labels
        self.parent = {v: lab.parent for v, lab in labels.items()}
        self.depth = {v: lab.depth for v, lab in labels.items()}
        self.children = {v: [] for v in labels}
        self.root = None
        for v, lab in labels.items():
            if lab.parent is None:
                self.root = v
            else:
                self.children[lab.parent].append(v)

    def _chain(self, node: NodeId) -> list[NodeId]:
        """``node`` and its ancestors up to the certificate root."""
        out = []
        v: NodeId | None = node
        for _ in range(len(self.parent) + 1):
            if v is None:
                return out
            out.append(v)
            v = self.parent[v]
        raise AssertionError("parent pointers do not reach the root")

    def _bump(self, origin: NodeId, dv: int = 0, dd: int = 0, df: int = 0) -> list[NodeId]:
        """Add subtree-tally deltas along ``origin``'s root chain."""
        chain = self._chain(origin)
        for a in chain:
            lab = self.certs.labels[a]
            lab.subtree_vertices += dv
            lab.subtree_degree += dd
            lab.subtree_faces += df
        return chain

    def _subtree(self, node: NodeId) -> set[NodeId]:
        out = {node}
        stack = [node]
        while stack:
            v = stack.pop()
            for c in self.children[v]:
                out.add(c)
                stack.append(c)
        return out

    def _face_walk(self, start: tuple[NodeId, NodeId]) -> list[tuple[NodeId, NodeId]]:
        """The face walk containing dart ``start``, on the live rotation."""
        limit = 2 * self.graph.num_edges + 2
        walk = [start]
        u, v = start
        for _ in range(limit):
            ring = self.rotation[v]
            u, v = v, ring[(ring.index(u) + 1) % len(ring)]
            if (u, v) == start:
                return walk
            walk.append((u, v))
        raise AssertionError(f"face walk from {start!r} did not close")

    def _relabel_walk(self, walk: list[tuple[NodeId, NodeId]]) -> NodeId:
        """Assign fresh dart labels to one face walk; returns the leader owner."""
        lead_pos = min(range(len(walk)), key=lambda i: repr(walk[i]))
        leader = walk[lead_pos]
        for pos, (s, t) in enumerate(walk):
            self.certs.labels[s].darts[t] = DartLabel(
                face=leader, length=len(walk), index=(pos - lead_pos) % len(walk)
            )
        return leader[0]

    def _threshold(self) -> int:
        return max(1, int(self.fallback_ratio * self.graph.num_nodes))

    # -- per-op cost + verification ----------------------------------------

    def _charge_patch(self, dirty: set[NodeId], sweeps: int = 1) -> int:
        """Charge the distributed cost model of one local patch:
        one exchange per sweep + convergecast from the deepest dirty
        node + the root's announce of the refreshed ``(m, f)``."""
        up = max((self.depth[v] for v in dirty if v in self.depth), default=0)
        announce = max(self.depth.values(), default=0)
        wbits = word_bits(max(1, self.graph.num_nodes))
        compact = encode_certificates(self.graph, self.certs)
        bits = compact.size_bits()
        words = sum(-(-bits[v] // wbits) for v in dirty if v in bits)
        rounds = sweeps + up + announce
        self.metrics.charge(
            "certify:delta",
            rounds,
            words=words,
            detail=f"patched {len(dirty)} labels, convergecast {up}, announce {announce}",
        )
        return rounds

    def _verify_scoped(self, dirty: set[NodeId]) -> tuple[bool, list[Rejection]]:
        """Re-run the verifier's predicates on the dirty closure only."""
        check = _closure(self.graph, dirty)
        rejections = _local_rejections(self.graph, self.rotation, self.certs, check)
        up = max((self.depth[v] for v in check if v in self.depth), default=0)
        announce = max(self.depth.values(), default=0)
        self.metrics.charge(
            "certify:delta",
            1 + up + announce,
            words=len(check),
            detail=f"scoped verify of {len(check)} nodes",
        )
        return not rejections, rejections

    def _verify_full(self) -> CertificationReport:
        """Full distributed verification through the compact codec shim."""
        self.compact = encode_certificates(self.graph, self.certs)
        self.last_certification = verify_compact(
            self.graph,
            self.rotation,
            self.compact,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        return self.last_certification

    def _record_rebuild(self, op: str, u: NodeId, v: NodeId, mode: str) -> PatchRecord:
        before = self.metrics.rounds
        if mode == "rebuild-embed":
            self._rebuild_embed()
            self.stats["embed_rebuilds"] += 1
        else:
            self._rebuild_certificates()
            self.stats["cert_rebuilds"] += 1
        report = self._verify_full()
        return PatchRecord(
            op=op,
            u=repr(u),
            v=repr(v),
            mode=mode,
            dirty=self.graph.num_nodes,
            rounds=self.metrics.rounds - before,
            accepted=report.accepted,
        )

    # -- mutations ---------------------------------------------------------

    def insert_edge(self, u: NodeId, v: NodeId) -> PatchRecord:
        """Add edge ``{u, v}``; patch the split face's labels in place.

        The endpoints must share a face of the current embedding (any
        chord of a face keeps the embedding planar by construction).
        When they do not, the engine re-embeds from scratch — which
        raises :class:`~repro.core.parts.NonPlanarNetworkError` if the
        edge genuinely breaks planarity.
        """
        if u == v or u not in self.graph or v not in self.graph:
            raise ValueError(f"cannot insert {u!r}-{v!r}")
        if self.graph.has_edge(u, v):
            raise ValueError(f"edge {u!r}-{v!r} already present")
        self.stats["ops"] += 1
        self.stats["inserts"] += 1
        with maybe_span(self.tracer, "certify-delta", kind="phase", n=self.graph.num_nodes):
            if not self.incremental:
                self.graph.add_edge(u, v)
                return self._record_rebuild("insert", u, v, "rebuild-embed")

            corners = self._find_shared_face(u, v)
            if corners is None:
                self.graph.add_edge(u, v)
                return self._record_rebuild("insert", u, v, "rebuild-embed")
            a, c, old_walk = corners
            old_leader_owner = self.certs.labels[old_walk[0][0]].darts[old_walk[0][1]].face[0]

            # Rotation split: v right after a around u, u right after c
            # around v — the face-tracing successors of (a,u) and (c,v)
            # become the new darts, splitting the walk in two.
            self.graph.add_edge(u, v)
            ring_u = list(self.rotation[u])
            ring_u.insert(ring_u.index(a) + 1, v)
            self.rotation[u] = tuple(ring_u)
            ring_v = list(self.rotation[v])
            ring_v.insert(ring_v.index(c) + 1, u)
            self.rotation[v] = tuple(ring_v)
            walk1 = self._face_walk((u, v))
            walk2 = self._face_walk((v, u))
            if len(walk1) + len(walk2) != len(old_walk) + 2:  # pragma: no cover
                raise AssertionError("face split did not conserve darts")

            dirty = {s for s, _ in walk1} | {s for s, _ in walk2} | {u, v}
            dirty |= set(self._chain(u)) | set(self._chain(v))
            dirty |= set(self._chain(old_leader_owner))
            if len(dirty) > self._threshold():
                return self._record_rebuild("insert", u, v, "rebuild-cert")

            before = self.metrics.rounds
            l1 = self._relabel_walk(walk1)
            l2 = self._relabel_walk(walk2)
            leader_delta: dict[NodeId, int] = {}
            for owner, d in ((old_leader_owner, -1), (l1, +1), (l2, +1)):
                leader_delta[owner] = leader_delta.get(owner, 0) + d
            for owner, d in leader_delta.items():
                if d:
                    self.certs.labels[owner].face_leaders += d
                    dirty |= set(self._bump(owner, df=d))
            dirty |= set(self._bump(u, dd=1))
            dirty |= set(self._bump(v, dd=1))
            for lab in self.certs.labels.values():
                lab.m += 1
                lab.f += 1
            self._charge_patch(dirty)
            ok, _rejections = self._verify_scoped(dirty)
            self.stats["patched"] += 1
            return PatchRecord(
                op="insert",
                u=repr(u),
                v=repr(v),
                mode="patched",
                dirty=len(dirty),
                rounds=self.metrics.rounds - before,
                accepted=ok,
            )

    def _find_shared_face(
        self, u: NodeId, v: NodeId
    ) -> tuple[NodeId, NodeId, list[tuple[NodeId, NodeId]]] | None:
        """Corners for inserting chord ``(u, v)``: the predecessors
        ``a`` (of ``u``'s corner) and ``c`` (of ``v``'s corner) on the
        first face walk incident to ``u`` that visits ``v``."""
        seen: set[tuple[NodeId, NodeId]] = set()
        for x in self.rotation[u]:
            if (u, x) in seen:
                continue
            walk = self._face_walk((u, x))
            seen.update(walk)
            for j in range(1, len(walk)):
                if walk[j][0] == v:
                    a = walk[-1][0]  # (a, u) precedes walk[0] == (u, x)
                    c = walk[j - 1][0]  # (c, v) precedes (v, d)
                    return a, c, walk
        return None

    def delete_edge(self, u: NodeId, v: NodeId) -> PatchRecord:
        """Remove edge ``{u, v}``; merge its two faces, patch labels.

        Bridges are refused (the network must stay connected).  Deleting
        a certificate-tree edge re-hangs the orphaned subtree on a
        neighbor outside it, shifting depths and moving its tallies
        between the old and new root chains; when no such neighbor
        exists (the subtree reconnects only through deeper vertices) or
        the dirty region exceeds the threshold, the labels are rebuilt
        by the real prover instead.
        """
        if not self.graph.has_edge(u, v):
            raise ValueError(f"no such edge: {u!r}-{v!r}")
        walk_a = self._face_walk((u, v))
        if (v, u) in walk_a:
            raise ValueError(f"edge {u!r}-{v!r} is a bridge; deleting it would disconnect")
        self.stats["ops"] += 1
        self.stats["deletes"] += 1
        with maybe_span(self.tracer, "certify-delta", kind="phase", n=self.graph.num_nodes):
            if not self.incremental:
                self.graph.remove_edge(u, v)
                return self._record_rebuild("delete", u, v, "rebuild-embed")

            walk_b = self._face_walk((v, u))
            leader_a_owner = self.certs.labels[u].darts[v].face[0]
            leader_b_owner = self.certs.labels[v].darts[u].face[0]

            # Rotation merge: drop the darts; the two walks concatenate.
            self.graph.remove_edge(u, v)
            self.rotation[u] = tuple(x for x in self.rotation[u] if x != v)
            self.rotation[v] = tuple(x for x in self.rotation[v] if x != u)
            merged = self._face_walk(walk_a[1])
            if len(merged) != len(walk_a) + len(walk_b) - 2:  # pragma: no cover
                raise AssertionError("face merge did not conserve darts")

            # Tree analysis (before touching any label).
            child: NodeId | None = None
            if self.parent.get(u) == v:
                child = u
            elif self.parent.get(v) == u:
                child = v
            new_parent: NodeId | None = None
            sub: set[NodeId] = set()
            if child is not None:
                sub = self._subtree(child)
                outside = [w for w in self.graph.neighbors(child) if w not in sub]
                if not outside:
                    return self._record_rebuild("delete", u, v, "rebuild-cert")
                new_parent = min(outside, key=lambda w: (self.depth[w], repr(w)))

            dirty = {s for s, _ in merged} | {u, v} | sub
            dirty |= set(self._chain(u if child != u else v))
            dirty |= set(self._chain(leader_a_owner)) | set(self._chain(leader_b_owner))
            if new_parent is not None:
                dirty |= set(self._chain(new_parent))
            if len(dirty) > self._threshold():
                return self._record_rebuild("delete", u, v, "rebuild-cert")

            before = self.metrics.rounds
            sweeps = 1
            if child is not None:
                sweeps = 2  # the re-hang is an extra local exchange
                old_parent = self.parent[child]
                lab_child = self.certs.labels[child]
                triple = (
                    lab_child.subtree_vertices,
                    lab_child.subtree_degree,
                    lab_child.subtree_faces,
                )
                # Detach the subtree's tallies from the old chain...
                for a in self._chain(old_parent):
                    lab = self.certs.labels[a]
                    lab.subtree_vertices -= triple[0]
                    lab.subtree_degree -= triple[1]
                    lab.subtree_faces -= triple[2]
                # ...re-hang child under new_parent, shifting depths...
                self.children[old_parent].remove(child)
                self.children[new_parent].append(child)
                self.parent[child] = new_parent
                lab_child.parent = new_parent
                shift = self.depth[new_parent] + 1 - self.depth[child]
                for x in sub:
                    self.depth[x] += shift
                    self.certs.labels[x].depth += shift
                # ...and attach the tallies to the new chain.
                for a in self._chain(new_parent):
                    lab = self.certs.labels[a]
                    lab.subtree_vertices += triple[0]
                    lab.subtree_degree += triple[1]
                    lab.subtree_faces += triple[2]

            del self.certs.labels[u].darts[v]
            del self.certs.labels[v].darts[u]
            lm = self._relabel_walk(merged)
            leader_delta: dict[NodeId, int] = {}
            for owner, d in ((leader_a_owner, -1), (leader_b_owner, -1), (lm, +1)):
                leader_delta[owner] = leader_delta.get(owner, 0) + d
            for owner, d in leader_delta.items():
                if d:
                    self.certs.labels[owner].face_leaders += d
                    dirty |= set(self._bump(owner, df=d))
            dirty |= set(self._bump(u, dd=-1))
            dirty |= set(self._bump(v, dd=-1))
            for lab in self.certs.labels.values():
                lab.m -= 1
                lab.f -= 1
            self._charge_patch(dirty, sweeps=sweeps)
            ok, _rejections = self._verify_scoped(dirty)
            self.stats["patched"] += 1
            return PatchRecord(
                op="delete",
                u=repr(u),
                v=repr(v),
                mode="patched",
                dirty=len(dirty),
                rounds=self.metrics.rounds - before,
                accepted=ok,
            )

    # -- churn workload ----------------------------------------------------

    def _propose_insert(self, rng: random.Random) -> tuple[str, NodeId, NodeId] | None:
        nodes = self.graph.nodes()
        for _ in range(8):
            u = rng.choice(nodes)
            x = rng.choice(list(self.rotation[u]))
            walk = self._face_walk((u, x))
            candidates = sorted(
                {s for s, _ in walk if s != u and not self.graph.has_edge(u, s)}, key=repr
            )
            if candidates:
                return ("insert", u, rng.choice(candidates))
        return None

    def _propose_delete(self, rng: random.Random) -> tuple[str, NodeId, NodeId] | None:
        edges = self.graph.edges()
        if len(edges) <= self.graph.num_nodes - 1:
            return None  # a tree: everything is a bridge
        for _ in range(8):
            a, b = rng.choice(edges)
            if (b, a) not in self._face_walk((a, b)):
                return ("delete", a, b)
        return None

    def run_churn(
        self,
        count: int,
        seed: int = 0,
        p_insert: float = 0.5,
        plan: list[tuple[str, NodeId, NodeId]] | None = None,
    ) -> ChurnReport:
        """Apply ``count`` seeded mutations (or replay an explicit plan).

        The generator proposes face-chord inserts and non-bridge deletes
        against the engine's evolving state, deterministically from
        ``seed``.  Returns a :class:`ChurnReport` whose ``plan`` can be
        replayed on another engine (e.g. ``incremental=False``) for the
        differential and round comparisons.
        """
        rng = random.Random(seed)
        executed: list[tuple[str, NodeId, NodeId]] = []
        records: list[PatchRecord] = []
        ops = list(plan) if plan is not None else None
        for i in range(count if ops is None else len(ops)):
            if ops is not None:
                op = tuple(ops[i])
            else:
                op = self._propose(rng, p_insert)
                if op is None:
                    break
            kind, a, b = op
            record = self.insert_edge(a, b) if kind == "insert" else self.delete_edge(a, b)
            executed.append((kind, a, b))
            records.append(record)
        final = self._verify_full()
        return ChurnReport(
            plan=executed,
            records=records,
            incremental=self.incremental,
            final_certification=final,
            stats=dict(self.stats),
        )

    def _propose(
        self, rng: random.Random, p_insert: float
    ) -> tuple[str, NodeId, NodeId] | None:
        want_insert = rng.random() < p_insert
        for _ in range(2):
            op = self._propose_insert(rng) if want_insert else self._propose_delete(rng)
            if op is not None:
                return op
            want_insert = not want_insert
        return None

    # -- interop -----------------------------------------------------------

    def certification(self) -> CertificationReport:
        """Full verification of the current state (compact codec shim)."""
        return self._verify_full()

    def to_result(self):
        """The live state as an :class:`~repro.core.algorithm.EmbeddingResult`."""
        from ..core.algorithm import EmbeddingResult

        if self.last_certification is None:
            self._verify_full()
        return EmbeddingResult(
            graph=self.graph,
            rotation=dict(self.rotation),
            rotation_system=RotationSystem.trusted(self.graph, dict(self.rotation)),
            metrics=self.metrics,
            leader=self.root,
            certificates=self.certs,
            certification=self.last_certification,
            compact_certificates=self.compact,
        )
