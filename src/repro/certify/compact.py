"""Bit-packed certificates: the O(log n)-*bit* label codec.

The E14 labels (:mod:`repro.certify.labels`) charge one CONGEST word per
field — a word is ``word_bits(n) = ceil(log2(n+1)) + 2`` bits, so a
counter that is almost always tiny (a depth, a face length, a leaf's
subtree tally) still costs a full word.  Feuilloley et al., *Compact
Distributed Certification of Planar Graphs* (PODC 2020) shows planarity
admits proof labels of O(log n) **bits**; this module packs our labels
toward that bound without changing their meaning:

* **node identifiers** (root, parent, dart endpoints) are fixed-width
  indices into the deterministic node table (graph insertion order),
  ``id_bits = ceil(log2 n)`` bits each — the only Θ(log n) fields;
* **counters** (depth, tallies, face lengths/indices, the global
  ``n, m, f``) are zigzag varints in 4-bit groups (3 payload bits + 1
  continuation bit), so the common small values take 4–8 bits while any
  integer — including an adversarially tampered one — still encodes;
* **presence flags** (has-parent) are single bits.

The decoder is *total and strict*: any blob — including one with
adversarially flipped bits — either decodes to a
:class:`~repro.certify.labels.NodeCertificate` (bit-exact round-trip of
whatever was encoded, honest or tampered) or raises
:class:`CompactDecodeError`.  :func:`verify_compact` is the codec shim:
it decodes every blob and hands the labels to the unchanged CONGEST
verifier (:func:`repro.certify.verifier.verify_distributed`), mapping a
node whose blob fails to decode to a missing label — which the verifier
rejects (``certificate-missing``).  Soundness therefore carries over
unchanged: a tamper is detected on compact labels iff it is detected on
word labels, plus bit-level corruption of the packing itself is caught
by the strict decoder or by whichever predicate the garbled field
violates.

Size accounting is measured, not modeled: every blob knows its exact
bit length, and :class:`CompactCertificateSet` reports total / mean /
max bits per node next to the E14 word-label baseline
(``words × word_bits(n)``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..planar.graph import Graph, NodeId
from .labels import CertificateSet, DartLabel, NodeCertificate

__all__ = [
    "BitReader",
    "BitWriter",
    "CompactCertificateSet",
    "CompactDecodeError",
    "encode_certificates",
    "verify_compact",
]

# A varint longer than this many 4-bit groups (192 payload bits) cannot
# come from any honest or XOR-tampered counter; the strict decoder
# rejects it instead of scanning unbounded garbage.
_MAX_VARINT_GROUPS = 64


class CompactDecodeError(ValueError):
    """A blob is not a well-formed compact label (truncated, trailing
    bits, an out-of-range node index, or a runaway varint)."""


class BitWriter:
    """Append-only bit sink, LSB-first within the growing integer."""

    def __init__(self) -> None:
        self._acc = 0
        self._nbits = 0

    def write_bits(self, value: int, width: int) -> None:
        if width < 0 or value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._acc |= value << self._nbits
        self._nbits += width

    def write_varint(self, value: int) -> None:
        """Zigzag varint: 4-bit groups of 3 payload bits + 1 continuation."""
        encoded = (value << 1) if value >= 0 else ((-value << 1) - 1)
        while True:
            self.write_bits(encoded & 7, 3)
            encoded >>= 3
            self.write_bits(1 if encoded else 0, 1)
            if not encoded:
                return

    @property
    def bit_length(self) -> int:
        return self._nbits

    def getvalue(self) -> tuple[bytes, int]:
        """The packed blob and its exact bit length."""
        nbytes = (self._nbits + 7) // 8
        return self._acc.to_bytes(nbytes, "little"), self._nbits


class BitReader:
    """Strict reader over a ``(blob, nbits)`` pair from :class:`BitWriter`."""

    def __init__(self, blob: bytes, nbits: int) -> None:
        if nbits < 0 or nbits > len(blob) * 8:
            raise CompactDecodeError(f"bit length {nbits} exceeds blob of {len(blob)} bytes")
        self._acc = int.from_bytes(blob, "little")
        self._nbits = nbits
        self._pos = 0

    def read_bits(self, width: int) -> int:
        if self._pos + width > self._nbits:
            raise CompactDecodeError(
                f"truncated blob: need {width} bits at offset {self._pos} of {self._nbits}"
            )
        value = (self._acc >> self._pos) & ((1 << width) - 1)
        self._pos += width
        return value

    def read_varint(self) -> int:
        encoded = 0
        shift = 0
        for _ in range(_MAX_VARINT_GROUPS):
            encoded |= self.read_bits(3) << shift
            shift += 3
            if not self.read_bits(1):
                return (encoded >> 1) if not (encoded & 1) else -((encoded + 1) >> 1)
        raise CompactDecodeError("runaway varint (no terminating group)")

    @property
    def exhausted(self) -> bool:
        return self._pos == self._nbits

    def expect_exhausted(self) -> None:
        if not self.exhausted:
            raise CompactDecodeError(
                f"{self._nbits - self._pos} trailing bits after the last field"
            )


# -- the label codec ---------------------------------------------------------


def _id_bits(n: int) -> int:
    return max(1, (n - 1).bit_length())


def _encode_label(
    label: NodeCertificate, index: dict[NodeId, int], id_bits: int
) -> tuple[bytes, int]:
    w = BitWriter()
    w.write_bits(index[label.root], id_bits)
    if label.parent is None:
        w.write_bits(0, 1)
    else:
        w.write_bits(1, 1)
        w.write_bits(index[label.parent], id_bits)
    for counter in (
        label.depth,
        label.n,
        label.m,
        label.f,
        label.subtree_vertices,
        label.subtree_degree,
        label.subtree_faces,
        label.face_leaders,
    ):
        w.write_varint(counter)
    w.write_varint(len(label.darts))
    for neighbor in sorted(label.darts, key=repr):
        dart = label.darts[neighbor]
        w.write_bits(index[neighbor], id_bits)
        w.write_bits(index[dart.face[0]], id_bits)
        w.write_bits(index[dart.face[1]], id_bits)
        w.write_varint(dart.length)
        w.write_varint(dart.index)
    return w.getvalue()


def _decode_label(
    node: NodeId, blob: bytes, nbits: int, table: tuple[NodeId, ...], id_bits: int
) -> NodeCertificate:
    r = BitReader(blob, nbits)

    def read_id() -> NodeId:
        i = r.read_bits(id_bits)
        if i >= len(table):
            raise CompactDecodeError(f"node index {i} out of range (n={len(table)})")
        return table[i]

    root = read_id()
    parent = read_id() if r.read_bits(1) else None
    counters = [r.read_varint() for _ in range(8)]
    dart_count = r.read_varint()
    if dart_count < 0 or dart_count > len(table):
        raise CompactDecodeError(f"implausible dart count {dart_count}")
    darts: dict[NodeId, DartLabel] = {}
    for _ in range(dart_count):
        neighbor = read_id()
        if neighbor in darts:
            raise CompactDecodeError(f"duplicate dart label for neighbor {neighbor!r}")
        face = (read_id(), read_id())
        length = r.read_varint()
        dart_index = r.read_varint()
        darts[neighbor] = DartLabel(face=face, length=length, index=dart_index)
    r.expect_exhausted()
    return NodeCertificate(
        node=node,
        root=root,
        parent=parent,
        depth=counters[0],
        n=counters[1],
        m=counters[2],
        f=counters[3],
        subtree_vertices=counters[4],
        subtree_degree=counters[5],
        subtree_faces=counters[6],
        face_leaders=counters[7],
        darts=darts,
    )


@dataclass
class CompactCertificateSet:
    """Every node's label as a packed ``(blob, exact bit length)`` pair.

    ``nodes`` is the codec's shared identifier table (graph insertion
    order) — the one piece of context a decoder needs besides the blob.
    """

    nodes: tuple[NodeId, ...]
    blobs: dict[NodeId, tuple[bytes, int]]

    def __len__(self) -> int:
        return len(self.blobs)

    def __iter__(self):
        return iter(self.blobs)

    def copy(self) -> "CompactCertificateSet":
        return CompactCertificateSet(nodes=self.nodes, blobs=dict(self.blobs))

    # -- decoding ----------------------------------------------------------

    def decode(self) -> CertificateSet:
        """Strict decode of every blob; raises on the first bad one."""
        id_bits = _id_bits(len(self.nodes))
        return CertificateSet(
            {
                v: _decode_label(v, blob, nbits, self.nodes, id_bits)
                for v, (blob, nbits) in self.blobs.items()
            }
        )

    def decode_lenient(self) -> tuple[CertificateSet, dict[NodeId, str]]:
        """Decode what decodes; report per-node errors for the rest.

        A node whose blob fails to decode simply has no label — exactly
        the state the CONGEST verifier rejects as ``certificate-missing``.
        """
        id_bits = _id_bits(len(self.nodes))
        labels: dict[NodeId, NodeCertificate] = {}
        errors: dict[NodeId, str] = {}
        for v, (blob, nbits) in self.blobs.items():
            try:
                labels[v] = _decode_label(v, blob, nbits, self.nodes, id_bits)
            except CompactDecodeError as exc:
                errors[v] = str(exc)
        return CertificateSet(labels), errors

    # -- tamper surface ----------------------------------------------------

    def flip_bit(self, node: NodeId, bit: int) -> None:
        """Flip one bit of one node's packed blob (adversary harness)."""
        blob, nbits = self.blobs[node]
        if not 0 <= bit < nbits:
            raise ValueError(f"bit {bit} outside blob of {nbits} bits")
        raw = bytearray(blob)
        raw[bit // 8] ^= 1 << (bit % 8)
        self.blobs[node] = (bytes(raw), nbits)

    # -- size accounting ---------------------------------------------------

    def size_bits(self) -> dict[NodeId, int]:
        return {v: nbits for v, (_, nbits) in self.blobs.items()}

    def total_bits(self) -> int:
        return sum(nbits for _, nbits in self.blobs.values())

    def max_bits(self) -> int:
        return max((nbits for _, nbits in self.blobs.values()), default=0)

    def mean_bits(self) -> float:
        return self.total_bits() / len(self.blobs) if self.blobs else 0.0

    def to_dict(self) -> dict:
        return {
            "nodes": len(self.blobs),
            "bits_total": self.total_bits(),
            "bits_max": self.max_bits(),
            "bits_mean": round(self.mean_bits(), 2),
        }


def encode_certificates(graph: Graph, certificates: CertificateSet) -> CompactCertificateSet:
    """Pack every label of ``certificates`` (honest or tampered).

    Encoding is pure bookkeeping at each node over its own label — no
    messages, no rounds.  The node table is the graph's deterministic
    insertion order, shared knowledge from the embedding run itself.
    """
    table = tuple(graph.nodes())
    index = {v: i for i, v in enumerate(table)}
    id_bits = _id_bits(len(table))
    blobs = {
        v: _encode_label(label, index, id_bits)
        for v, label in certificates.labels.items()
    }
    return CompactCertificateSet(nodes=table, blobs=blobs)


def verify_compact(
    graph: Graph,
    rotation,
    compact: CompactCertificateSet,
    metrics=None,
    tracer=None,
    bandwidth_words: int | None = None,
):
    """The codec shim: decode, then run the unchanged CONGEST verifier.

    Returns the usual :class:`~repro.certify.verifier.CertificationReport`
    with the ``label_bits_*`` size fields replaced by the *measured*
    compact bit counts (the word-based fields keep reporting the decoded
    labels' word sizes, so both axes of E21's size comparison ride on
    one report).
    """
    from .verifier import VERIFIER_BANDWIDTH_WORDS, verify_distributed

    decoded, errors = compact.decode_lenient()
    report = verify_distributed(
        graph,
        rotation,
        decoded,
        metrics=metrics,
        tracer=tracer,
        bandwidth_words=(
            bandwidth_words if bandwidth_words is not None else VERIFIER_BANDWIDTH_WORDS
        ),
    )
    report.label_bits_total = compact.total_bits()
    report.label_bits_mean = compact.mean_bits()
    report.label_bits_max = compact.max_bits()
    if errors:
        # Decode failures already surfaced as certificate-missing
        # rejections; keep the codec-level diagnosis alongside them.
        report.decode_errors = {
            repr(v): msg for v, msg in sorted(errors.items(), key=lambda kv: repr(kv[0]))
        }
    return report
