"""The distributed certificate verifier: a real CONGEST node program.

Each node exchanges one message with each neighbor — its spanning-tree
fields plus the label of the dart pointing at that neighbor — and then
decides locally.  The scheme **accepts iff every node accepts**; a
rejection names the violated predicate.  On top of the one-exchange
decision, the verdict is announced network-wide by certificate-independent
protocols (max-ID election, BFS, AND-convergecast, broadcast), so the
whole verification runs in O(D) real rounds, all accounted in the
metrics ledger under ``certify:*`` phases.

Predicates checked at node ``v`` (names appear in rejections):

* ``rotation-permutation`` — ``v``'s claimed clockwise order is a
  permutation of its neighbors, and a dart label exists per neighbor;
* ``tree-root-claim`` / ``tree-depth`` / ``tree-parent-neighbor`` —
  the spanning-tree fields are locally consistent (the root has depth 0,
  everyone else a neighboring parent one level up);
* ``global-consistency`` — ``v`` and each neighbor agree on
  ``(root, n, m, f)``;
* ``subtree-vertex-sum`` / ``subtree-degree-sum`` / ``subtree-face-sum``
  — ``v``'s subtree tallies equal its own contribution plus its
  children's claims;
* ``face-leader-count`` / ``face-leader-dart`` / ``face-index-range`` —
  ``v``'s claimed leader count matches its index-0 out-darts, and a dart
  has index 0 exactly when it *is* the leader its face names;
* ``face-succession`` — for every in-dart ``(u, v)``, the face-tracing
  successor ``(v, w)`` (computed from ``v``'s own rotation) carries the
  same face identity and length and the next index;
* root only: ``root-vertex-total`` / ``root-degree-total`` /
  ``root-face-total`` / ``euler-formula`` (``n - m + f = 2``).

**Soundness.**  Suppose all predicates hold everywhere.  Shared root and
strictly decreasing depths make the parent pointers a spanning tree, so
the subtree sums force ``n``, ``2m`` and ``F = sum of face_leaders`` to
be the true totals.  Along any true face walk the succession predicate
forces one face identity ``X`` and indices advancing mod the claimed
length, so the walk's length is a multiple of the claim and *every*
residue — in particular 0 — is attained; each index-0 dart must equal
``X`` itself, so all index-0 positions are one and the same dart, the
claimed length equals the true length, and the walk carries exactly one
leader.  Hence ``F`` counts the true faces exactly, and the root's Euler
check decides genus 0 — i.e. planarity of the claimed rotation — with no
slack for a cheating prover.  The adversary harness
(:mod:`repro.certify.adversary`) exercises this argument mechanically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..congest.metrics import RoundMetrics
from ..congest.network import CongestNetwork
from ..congest.node import NodeProgram
from ..obs import Tracer, maybe_span
from ..planar.graph import Graph, NodeId
from ..primitives.aggregation import tree_aggregate, tree_broadcast
from ..primitives.bfs import build_bfs_tree
from ..primitives.leader import elect_leader
from .labels import CertificateSet, NodeCertificate

__all__ = [
    "Rejection",
    "CertificationReport",
    "CertVerifierProgram",
    "verify_distributed",
    "centralized_check_rounds",
]

# The exchange message is a constant number of words (ten tree fields,
# one dart label, a tag); 24 leaves slack for counters that spill into a
# second word.  Still B = O(log n) bits.
VERIFIER_BANDWIDTH_WORDS = 24


@dataclass(frozen=True)
class Rejection:
    """One node's refusal, with the predicate it saw violated."""

    node: NodeId
    predicate: str
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"node": repr(self.node), "predicate": self.predicate, "detail": self.detail}


@dataclass
class CertificationReport:
    """Outcome of one distributed verification."""

    accepted: bool
    rejections: list[Rejection]
    rounds: int  # real CONGEST rounds this verification consumed
    nodes: int
    announced_ok: bool  # the verdict the root broadcast
    announced_rejections: int
    label_words_max: int = 0
    label_words_mean: float = 0.0
    # Measured certificate sizes in *bits*: the word-label baseline when
    # verifying a plain CertificateSet, the packed blob sizes when the
    # compact codec shim (repro.certify.compact.verify_compact) ran.
    label_bits_total: int = 0
    label_bits_max: int = 0
    label_bits_mean: float = 0.0
    # Per-node codec diagnoses from the compact shim (None = no codec in
    # the path or every blob decoded).
    decode_errors: dict[str, str] | None = None

    def to_dict(self) -> dict[str, Any]:
        out = {
            "accepted": self.accepted,
            "rounds": self.rounds,
            "nodes": self.nodes,
            "announced_ok": self.announced_ok,
            "announced_rejections": self.announced_rejections,
            "label_words_max": self.label_words_max,
            "label_words_mean": round(self.label_words_mean, 2),
            "label_bits_total": self.label_bits_total,
            "label_bits_max": self.label_bits_max,
            "label_bits_mean": round(self.label_bits_mean, 2),
            "rejections": [r.to_dict() for r in self.rejections[:20]],
        }
        if self.decode_errors is not None:
            out["decode_errors"] = dict(self.decode_errors)
        return out

    def summary(self) -> str:
        if self.accepted:
            return (
                f"certification ACCEPTED by all {self.nodes} nodes "
                f"in {self.rounds} rounds "
                f"(labels <= {self.label_words_max} words/node)"
            )
        first = self.rejections[0]
        return (
            f"certification REJECTED ({len(self.rejections)} rejections) — "
            f"node {first.node!r} violated {first.predicate}: {first.detail}"
        )


class CertVerifierProgram(NodeProgram):
    """Per-node verifier: one exchange with each neighbor, then decide.

    Event-driven: everyone sends in ``on_start`` and decides when the
    last neighbor's label arrives; an empty inbox is a no-op.
    """

    event_driven = True

    def __init__(
        self,
        node_id: NodeId,
        neighbors: list[NodeId],
        label: NodeCertificate | None,
        ring: tuple[NodeId, ...],
    ) -> None:
        super().__init__(node_id, neighbors)
        self.label = label
        self.ring = tuple(ring)
        self.violations: list[tuple[str, str]] = []
        self.received: dict[NodeId, Any] = {}
        self.decided = False
        self.done = True  # quiescence-terminated

    # -- protocol ----------------------------------------------------------

    def _message_for(self, u: NodeId) -> tuple:
        dart = None
        if self.label is not None and u in self.label.darts:
            dart = self.label.darts[u].encode()
        fields = self.label.tree_fields() if self.label is not None else None
        return ("crt", fields, dart)

    def on_start(self) -> dict[NodeId, Any]:
        if not self.neighbors:
            self._decide()
            return {}
        return {u: self._message_for(u) for u in self.neighbors}

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        for u, payload in inbox.items():
            self.received[u] = payload
        if not self.decided and len(self.received) >= len(self.neighbors):
            self._decide()
        return {}

    def result(self) -> list[tuple[str, str]]:
        return list(self.violations)

    # -- the local verifier ------------------------------------------------

    def _reject(self, predicate: str, detail: str = "") -> None:
        self.violations.append((predicate, detail))

    def _decide(self) -> None:
        self.decided = True
        me = self.node_id
        L = self.label
        if L is None:
            self._reject("certificate-missing", "node holds no label")
            return

        # Rotation well-formedness: the claimed clockwise order must be a
        # permutation of the true neighbors, with one dart label each.
        ring_ok = len(self.ring) == len(self.neighbors) and set(self.ring) == set(
            self.neighbors
        ) and len(set(self.ring)) == len(self.ring)
        if not ring_ok:
            self._reject(
                "rotation-permutation",
                f"rotation {self.ring!r} is not a permutation of "
                f"{len(self.neighbors)} neighbors",
            )
        if set(L.darts) != set(self.neighbors):
            self._reject(
                "rotation-permutation",
                "dart labels do not cover exactly the incident edges",
            )

        fields: dict[NodeId, tuple] = {}
        darts_in: dict[NodeId, tuple | None] = {}
        for u in self.neighbors:
            payload = self.received.get(u)
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] != "crt"
                or not isinstance(payload[1], tuple)
                or len(payload[1]) != 10
            ):
                self._reject("certificate-missing", f"no valid label from {u!r}")
                continue
            fields[u] = payload[1]
            darts_in[u] = payload[2]

        # Spanning-tree shape.
        if L.parent is None or me == L.root or L.depth == 0:
            if not (L.parent is None and me == L.root and L.depth == 0):
                self._reject(
                    "tree-root-claim",
                    f"parent={L.parent!r} depth={L.depth} root={L.root!r}",
                )
        elif L.parent not in set(self.neighbors):
            self._reject("tree-parent-neighbor", f"parent {L.parent!r} is not a neighbor")
        elif L.parent in fields and fields[L.parent][2] + 1 != L.depth:
            self._reject(
                "tree-depth",
                f"depth {L.depth} != parent depth {fields[L.parent][2]} + 1",
            )

        # Global fields must agree across every edge.
        mine = (L.root, L.n, L.m, L.f)
        for u, tf in fields.items():
            theirs = (tf[0], tf[3], tf[4], tf[5])
            if theirs != mine:
                self._reject(
                    "global-consistency",
                    f"(root, n, m, f) disagreement with {u!r}: {theirs!r} != {mine!r}",
                )

        # Subtree tallies: children are the neighbors that claim me.
        child_fields = [tf for tf in fields.values() if tf[1] == me]
        sums = tuple(
            sum(tf[i] for tf in child_fields) for i in (6, 7, 8)
        )
        for predicate, claimed, expected in (
            ("subtree-vertex-sum", L.subtree_vertices, 1 + sums[0]),
            ("subtree-degree-sum", L.subtree_degree, len(self.neighbors) + sums[1]),
            ("subtree-face-sum", L.subtree_faces, L.face_leaders + sums[2]),
        ):
            if claimed != expected:
                self._reject(predicate, f"claimed {claimed}, children imply {expected}")

        # Face labels on the out-darts.
        leader_count = 0
        for w, dart in sorted(L.darts.items(), key=lambda kv: repr(kv[0])):
            is_leader = dart.face == (me, w)
            if dart.index == 0:
                leader_count += 1
            if (dart.index == 0) != is_leader:
                self._reject(
                    "face-leader-dart",
                    f"dart {(me, w)!r} index {dart.index} vs face leader {dart.face!r}",
                )
            if not (1 <= dart.length and 0 <= dart.index < dart.length):
                self._reject(
                    "face-index-range",
                    f"dart {(me, w)!r} index {dart.index} outside face length {dart.length}",
                )
        # An isolated node (only in a one-node network) owns the sphere face.
        expected_leaders = leader_count + (1 if not self.neighbors else 0)
        if L.face_leaders != expected_leaders:
            self._reject(
                "face-leader-count",
                f"claimed {L.face_leaders} leaders, darts show {expected_leaders}",
            )

        # Face succession: the successor of in-dart (u, me) is (me, w) with
        # w the neighbor clockwise-after u in my own rotation.
        if ring_ok and self.ring:
            position = {u: i for i, u in enumerate(self.ring)}
            for u, dart_in in darts_in.items():
                if dart_in is None or not isinstance(dart_in, tuple) or len(dart_in) != 4:
                    self._reject("face-succession", f"no dart label on edge from {u!r}")
                    continue
                in_face, in_len, in_idx = (dart_in[0], dart_in[1]), dart_in[2], dart_in[3]
                w = self.ring[(position[u] + 1) % len(self.ring)]
                succ = L.darts.get(w)
                if succ is None:
                    continue  # already rejected by rotation-permutation
                if in_len <= 0:
                    continue  # sender's own face-index-range check fires
                if (
                    succ.face != in_face
                    or succ.length != in_len
                    or succ.index != (in_idx + 1) % in_len
                ):
                    self._reject(
                        "face-succession",
                        f"dart {(u, me)!r} (face {in_face!r}, idx {in_idx}) is not "
                        f"followed by {(me, w)!r} "
                        f"(face {succ.face!r}, idx {succ.index})",
                    )

        # Root-anchored totals: only the root can close the Euler formula.
        if L.parent is None and me == L.root:
            for predicate, ok, detail in (
                (
                    "root-vertex-total",
                    L.subtree_vertices == L.n,
                    f"subtree vertices {L.subtree_vertices} != n {L.n}",
                ),
                (
                    "root-degree-total",
                    L.subtree_degree == 2 * L.m,
                    f"subtree degree {L.subtree_degree} != 2m {2 * L.m}",
                ),
                (
                    "root-face-total",
                    L.subtree_faces == L.f,
                    f"subtree faces {L.subtree_faces} != f {L.f}",
                ),
                (
                    "euler-formula",
                    L.n - L.m + L.f == 2,
                    f"V - E + F = {L.n} - {L.m} + {L.f} = {L.n - L.m + L.f} != 2",
                ),
            ):
                if not ok:
                    self._reject(predicate, detail)


def verify_distributed(
    graph: Graph,
    rotation: Mapping[NodeId, Sequence[NodeId]],
    certificates: CertificateSet,
    metrics: RoundMetrics | None = None,
    tracer: Tracer | None = None,
    bandwidth_words: int = VERIFIER_BANDWIDTH_WORDS,
) -> CertificationReport:
    """Run the distributed verifier; O(D) real rounds, every cost ledgered.

    ``rotation`` is the claimed per-vertex clockwise order (the
    ``EmbeddingResult.rotation`` mapping — possibly tampered, hence a
    plain mapping rather than a validated :class:`RotationSystem`).
    Returns a :class:`CertificationReport`; the scheme accepts iff every
    node accepts, and the verdict is also announced network-wide by
    certificate-independent election/BFS/convergecast so no faith in the
    (untrusted) certificate tree is needed to aggregate it.
    """
    ledger = metrics if metrics is not None else RoundMetrics()
    if tracer is not None and ledger.observer is None:
        ledger.observer = tracer
    before = ledger.rounds
    with maybe_span(tracer, "certify-verify", kind="phase", n=graph.num_nodes):
        network = CongestNetwork(graph, bandwidth_words=bandwidth_words, metrics=ledger)
        programs = {
            v: CertVerifierProgram(
                v,
                graph.neighbors(v),
                certificates.labels.get(v),
                tuple(rotation.get(v, ())),
            )
            for v in graph.nodes()
        }
        results = network.run(programs, phase="certify:exchange")
        rejections = [
            Rejection(v, predicate, detail)
            for v in sorted(results, key=repr)
            for predicate, detail in results[v]
        ]

        # Network-wide verdict in O(D): election + BFS + AND-convergecast
        # + broadcast, none of which trusts the certificates.
        if graph.num_nodes > 1:
            leader = elect_leader(graph, metrics=ledger, phase="certify:verdict")
            tree = build_bfs_tree(graph, leader, metrics=ledger, phase="certify:verdict")
            verdicts = tree_aggregate(
                graph,
                tree.parent,
                tree.children,
                {v: (int(not results[v]), len(results[v])) for v in graph.nodes()},
                lambda items: (
                    int(all(ok for ok, _ in items)),
                    sum(cnt for _, cnt in items),
                ),
                metrics=ledger,
                phase="certify:verdict",
            )
            announced_ok, announced_rejections = verdicts[leader][0]
            tree_broadcast(
                graph,
                tree.parent,
                tree.children,
                (announced_ok, announced_rejections),
                metrics=ledger,
                phase="certify:verdict",
            )
        else:
            announced_ok = int(not rejections)
            announced_rejections = len(rejections)

    bit_sizes = certificates.size_bits()
    return CertificationReport(
        accepted=not rejections,
        rejections=rejections,
        rounds=ledger.rounds - before,
        nodes=graph.num_nodes,
        announced_ok=bool(announced_ok),
        announced_rejections=announced_rejections,
        label_words_max=certificates.max_words(),
        label_words_mean=certificates.mean_words(),
        label_bits_total=sum(bit_sizes.values()),
        label_bits_max=max(bit_sizes.values(), default=0),
        label_bits_mean=(
            sum(bit_sizes.values()) / len(bit_sizes) if bit_sizes else 0.0
        ),
    )


def centralized_check_rounds(
    graph: Graph, bandwidth_words: int = 1, metrics: RoundMetrics | None = None
) -> RoundMetrics:
    """Round cost of the footnote-2 style *gather-and-check* baseline.

    Every node ships its rotation (1 + deg(v) words) to an elected root
    over a BFS tree; the root re-runs the centralized Euler referee and
    broadcasts the verdict.  Election and BFS are real executions; the
    gather is charged with the exact pipelined bottleneck formula also
    used by :func:`repro.core.baseline.trivial_baseline_embedding` —
    Θ(n) rounds on planar graphs however the tree is shaped.  E14 races
    the O(D) distributed verifier against this.
    """
    ledger = metrics if metrics is not None else RoundMetrics()
    if graph.num_nodes <= 1:
        return ledger
    leader = elect_leader(graph, metrics=ledger, phase="certify:baseline")
    tree = build_bfs_tree(graph, leader, metrics=ledger, phase="certify:baseline")

    words_of = {v: 1 + graph.degree(v) for v in graph.nodes()}
    totals: dict[NodeId, int] = {}
    order = sorted(tree.depth_of, key=lambda v: -tree.depth_of[v])
    for v in order:
        totals[v] = words_of[v] + sum(totals[c] for c in tree.children.get(v, ()))
    bottleneck = max((totals[c] for c in tree.children.get(leader, ())), default=0)
    gather_rounds = tree.depth + math.ceil(bottleneck / bandwidth_words)
    ledger.charge(
        "certify:baseline",
        gather_rounds,
        words=sum(words_of.values()),
        detail=f"gather {sum(words_of.values())} rotation words to root",
    )
    ledger.charge(
        "certify:baseline", tree.depth, words=graph.num_nodes, detail="verdict broadcast"
    )
    return ledger
