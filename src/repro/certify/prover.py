"""Certificate construction: the prover half of the labeling scheme.

After the embedding algorithm terminates, every node holds its clockwise
edge order.  The construction phase turns that scattered output into a
*self-verifying* one:

1. a certificate spanning tree is built by real message passing —
   max-ID leader election followed by BFS, O(D) rounds, both accounted
   in the metrics ledger under ``certify:*`` phases;
2. the prover assigns every dart its face label (leader identity, face
   length, index in the walk).  Face walks are a function of the very
   rotation system being certified, so this step is the omniscient-prover
   part of the proof-labeling model: it costs no rounds, and nothing in
   it is trusted — the verifier re-derives every claim locally;
3. the subtree tallies ``(vertices, degree, face leaders)`` convergecast
   up the tree (O(depth) rounds, real messages), and the root broadcasts
   the resulting global totals ``(n, 2m, f)`` back down.

The result is a :class:`~repro.certify.labels.CertificateSet` mapping
each node to its :class:`~repro.certify.labels.NodeCertificate`.

Scheduling: every real execution here (election, BFS, convergecast,
broadcast) runs event-driven node programs, so certificate construction
wakes each node O(1) times per sub-protocol rather than every round.
"""

from __future__ import annotations

from ..congest.metrics import RoundMetrics
from ..obs import Tracer, maybe_span
from ..planar.graph import Graph, NodeId
from ..planar.rotation import RotationSystem, trace_faces
from ..primitives.aggregation import tree_aggregate, tree_broadcast
from ..primitives.bfs import build_bfs_tree
from ..primitives.leader import elect_leader
from .labels import CertificateSet, DartLabel, NodeCertificate

__all__ = ["build_certificates", "face_labels"]


def face_labels(
    rotation: RotationSystem,
) -> tuple[dict[tuple, DartLabel], dict[NodeId, int]]:
    """Label every dart with (leader dart, face length, index).

    The leader of a face walk is its repr-smallest dart; indices count
    positions along the walk starting from the leader.  Also returns the
    per-node count of leader darts, whose sum over all nodes is the face
    count ``F`` entering the Euler check.
    """
    labels: dict[tuple, DartLabel] = {}
    leaders: dict[NodeId, int] = {v: 0 for v in rotation.graph.nodes()}
    for walk in trace_faces(rotation):
        lead_pos = min(range(len(walk)), key=lambda i: repr(walk[i]))
        leader = walk[lead_pos]
        for pos, dart in enumerate(walk):
            labels[dart] = DartLabel(
                face=leader, length=len(walk), index=(pos - lead_pos) % len(walk)
            )
        leaders[leader[0]] += 1
    return labels, leaders


def build_certificates(
    graph: Graph,
    rotation: RotationSystem,
    metrics: RoundMetrics | None = None,
    tracer: Tracer | None = None,
) -> CertificateSet:
    """Equip every node with its proof label (see module docstring).

    ``graph`` must be connected (the embedding pipeline guarantees it).
    Real rounds — election, BFS, convergecast, broadcast — land in
    ``metrics`` under ``certify:*`` phases and on the current trace span.
    """
    ledger = metrics if metrics is not None else RoundMetrics()
    with maybe_span(tracer, "certify-prove", kind="phase", n=graph.num_nodes):
        if graph.num_nodes == 1:
            (v,) = graph.nodes()
            # A single node is the whole sphere: one face, no darts.
            label = NodeCertificate(
                node=v, root=v, parent=None, depth=0, n=1, m=0, f=1,
                subtree_vertices=1, subtree_degree=0, subtree_faces=1,
                face_leaders=1,
            )
            return CertificateSet({v: label})

        leader = elect_leader(graph, metrics=ledger, phase="certify:leader")
        tree = build_bfs_tree(graph, leader, metrics=ledger, phase="certify:bfs")
        dart_labels, leaders = face_labels(rotation)

        # Convergecast (vertices, degree, face leaders); every node keeps
        # its own subtree triple, the root's is the global total.
        values = {
            v: (1, graph.degree(v), leaders[v]) for v in graph.nodes()
        }
        combined = tree_aggregate(
            graph,
            tree.parent,
            tree.children,
            values,
            lambda items: tuple(sum(col) for col in zip(*items)),
            metrics=ledger,
            phase="certify:tally",
        )
        n_total, degree_total, f_total = combined[leader][0]
        totals = tree_broadcast(
            graph,
            tree.parent,
            tree.children,
            (n_total, degree_total // 2, f_total),
            metrics=ledger,
            phase="certify:announce",
        )

        labels: dict[NodeId, NodeCertificate] = {}
        for v in graph.nodes():
            sv, sd, sf = combined[v][0]
            n, m, f = totals[v]
            labels[v] = NodeCertificate(
                node=v,
                root=leader,
                parent=tree.parent[v],
                depth=tree.depth_of[v],
                n=n,
                m=m,
                f=f,
                subtree_vertices=sv,
                subtree_degree=sd,
                subtree_faces=sf,
                face_leaders=leaders[v],
                darts={
                    w: dart_labels[(v, w)] for w in rotation.order(v)
                },
            )
        return CertificateSet(labels)
