"""Proof labels: the per-node certificates of a planar embedding.

A *proof-labeling scheme* (Korman-Kutten-Peleg; for planarity see
Feuilloley et al., PODC 2020) equips every node with a small label such
that a one-exchange local verifier accepts everywhere iff the global
claim holds.  Here the claim is "the per-vertex clockwise orders output
by the embedding algorithm form a genus-0 rotation system", and the
label of node ``v`` consists of

* **spanning-tree fields** — the certificate tree's root identifier,
  ``v``'s parent and depth in it, and the global tallies ``(n, m, f)``
  the root announced (vertices, edges, faces);
* **subtree tallies** — the number of vertices, the total degree, and
  the number of face-leader darts inside ``v``'s subtree, convergecast
  up the tree by the prover and re-checked against the children's
  claims by the verifier;
* **per-dart face labels** — for every out-dart ``(v, w)`` the identity
  of its face's *leader dart*, the face length, and the dart's index in
  the face walk.  These make the face count locally verifiable: indices
  must advance by one along the face-tracing successor, and a dart
  claims index 0 iff it *is* the leader named by the face identity, so
  every true face walk carries exactly one leader (see
  :mod:`repro.certify.verifier` for the soundness argument).

Sizes: every field is one CONGEST word (a node identifier or a counter
bounded by ``6n``), so a label is ``O(1 + deg(v))`` words — ``O(log n)``
bits per edge endpoint.  Planar graphs have average degree below six,
hence certificates average ``O(log n)`` bits per node; on the
bounded-degree workload families the maximum is ``O(log n)`` too.  The
measured sizes are part of experiment E14.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..congest.message import payload_words, word_bits
from ..planar.graph import NodeId

__all__ = ["DartLabel", "NodeCertificate", "CertificateSet"]


@dataclass
class DartLabel:
    """Face certification for one out-dart ``(v, w)``.

    ``face`` names the face's canonical *leader dart* (the repr-smallest
    dart of the walk); ``length`` is the number of darts on the walk and
    ``index`` this dart's position, with the leader at index 0.
    """

    face: tuple  # (u, w): the leader dart of this dart's face walk
    length: int
    index: int

    def encode(self) -> tuple:
        """Wire encoding: four words (two ids + two counters)."""
        return (self.face[0], self.face[1], self.length, self.index)


@dataclass
class NodeCertificate:
    """The complete proof label held by one node."""

    node: NodeId
    root: NodeId
    parent: NodeId | None
    depth: int
    n: int  # global vertex count, announced by the root
    m: int  # global edge count
    f: int  # global face count
    subtree_vertices: int
    subtree_degree: int  # sum of degrees over the subtree; 2m at the root
    subtree_faces: int
    face_leaders: int  # claimed leader darts at this node
    darts: dict[NodeId, DartLabel] = field(default_factory=dict)

    def tree_fields(self) -> tuple:
        """The dart-independent part of the label (what neighbors audit)."""
        return (
            self.root,
            self.parent,
            self.depth,
            self.n,
            self.m,
            self.f,
            self.subtree_vertices,
            self.subtree_degree,
            self.subtree_faces,
            self.face_leaders,
        )

    def encode(self) -> tuple:
        """Canonical wire encoding of the whole label."""
        return self.tree_fields() + tuple(
            (w,) + self.darts[w].encode() for w in sorted(self.darts, key=repr)
        )

    def words(self, bits_per_word: int) -> int:
        """The label's size in CONGEST words."""
        return payload_words(self.encode(), bits_per_word)

    def copy(self) -> "NodeCertificate":
        """An independent copy (the adversary mutates copies, never originals)."""
        return replace(self, darts={w: replace(d) for w, d in self.darts.items()})


@dataclass
class CertificateSet:
    """All node certificates of one run, plus size accounting."""

    labels: dict[NodeId, NodeCertificate]

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, node: NodeId) -> NodeCertificate:
        return self.labels[node]

    def __iter__(self):
        return iter(self.labels)

    def copy(self) -> "CertificateSet":
        return CertificateSet({v: c.copy() for v, c in self.labels.items()})

    # -- size accounting ---------------------------------------------------

    def size_words(self) -> dict[NodeId, int]:
        """Per-node label size in words (word = ``word_bits(n)`` bits)."""
        bits = word_bits(max(1, len(self.labels)))
        return {v: c.words(bits) for v, c in self.labels.items()}

    def max_words(self) -> int:
        sizes = self.size_words()
        return max(sizes.values(), default=0)

    def mean_words(self) -> float:
        sizes = self.size_words()
        return sum(sizes.values()) / len(sizes) if sizes else 0.0

    def size_bits(self) -> dict[NodeId, int]:
        """Per-node label size in *bits* under word encoding: the E14
        baseline (``words × word_bits(n)``) that the compact codec
        (:mod:`repro.certify.compact`) is measured against."""
        bits = word_bits(max(1, len(self.labels)))
        return {v: c.words(bits) * bits for v, c in self.labels.items()}

    def to_dict(self) -> dict:
        """A JSON-ready size summary (labels themselves stay binary-ish)."""
        bit_sizes = self.size_bits()
        return {
            "nodes": len(self.labels),
            "words_max": self.max_words(),
            "words_mean": round(self.mean_words(), 2),
            "bits_max": max(bit_sizes.values(), default=0),
            "bits_mean": (
                round(sum(bit_sizes.values()) / len(bit_sizes), 2) if bit_sizes else 0.0
            ),
        }
