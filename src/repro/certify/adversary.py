"""Adversarial tamper harness: mechanical soundness checks.

Each tamper class takes an honest ``(rotation, certificates)`` pair and
produces a corrupted copy that a cheating prover might plausibly submit
— locally self-consistent wherever the adversary can afford it.  The
suite then runs the real distributed verifier and asserts that **every
tamper is rejected by at least one node**, reporting the detecting node
and the violated predicate.  The classes are chosen to stress different
parts of the soundness argument:

``bit-flip``
    one random bit of one random counter field in one node's label —
    the self-anchored subtree sums and cross-edge consistency checks
    leave no slack for even a single-bit perturbation;
``rotation-swap``
    two adjacent neighbors transposed in one node's clockwise order
    (at a node of degree >= 3, where a transposition genuinely changes
    the cyclic order; on degree-<=2 networks the fallback corrupts the
    ring into a non-permutation) — honest face labels then contradict
    the face-tracing successor rule;
``face-forgery``
    a node crowns one of its darts leader of a fresh face and bumps its
    own leader/subtree tallies so *its* counts add up — the succession
    predicate or an ancestor's subtree sum still catches it;
``collusion``
    an adjacent pair agree on an inflated global face count — any
    honest node bordering the pair sees the disagreement, and on a
    two-node network the root's own totals give it away;
``global-forgery``
    *every* node announces the same inflated face count — perfectly
    consistent across all edges, so only the root's anchored totals and
    Euler check stand between the forger and a wrong genus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..planar.graph import Graph, NodeId
from .labels import CertificateSet
from .verifier import VERIFIER_BANDWIDTH_WORDS, Rejection, verify_distributed

__all__ = [
    "TamperOutcome",
    "TamperSuiteReport",
    "TAMPER_CLASSES",
    "apply_tamper",
    "run_tamper_suite",
]

RotationMap = dict[NodeId, tuple[NodeId, ...]]


@dataclass
class TamperOutcome:
    """One tampered instance and the verifier's reaction to it."""

    tamper_class: str
    description: str
    detected: bool
    rejections: list[Rejection] = field(default_factory=list)

    @property
    def detecting_node(self) -> NodeId | None:
        return self.rejections[0].node if self.rejections else None

    @property
    def violated_predicate(self) -> str | None:
        return self.rejections[0].predicate if self.rejections else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "class": self.tamper_class,
            "description": self.description,
            "detected": self.detected,
            "detecting_node": repr(self.detecting_node),
            "violated_predicate": self.violated_predicate,
            "rejections": [r.to_dict() for r in self.rejections[:5]],
        }


@dataclass
class TamperSuiteReport:
    """Soundness sweep outcome: all tampers must be detected."""

    outcomes: list[TamperOutcome]
    nodes: int

    @property
    def all_detected(self) -> bool:
        return bool(self.outcomes) and all(o.detected for o in self.outcomes)

    @property
    def missed(self) -> list[TamperOutcome]:
        return [o for o in self.outcomes if not o.detected]

    def to_dict(self) -> dict[str, Any]:
        return {
            "nodes": self.nodes,
            "tampers": len(self.outcomes),
            "detected": sum(o.detected for o in self.outcomes),
            "all_detected": self.all_detected,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        total = len(self.outcomes)
        hit = sum(o.detected for o in self.outcomes)
        lines = [f"tamper suite: {hit}/{total} detected on n={self.nodes}"]
        for o in self.outcomes:
            verdict = (
                f"rejected by node {o.detecting_node!r} ({o.violated_predicate})"
                if o.detected
                else "MISSED — soundness breach"
            )
            lines.append(f"  {o.tamper_class:14s} {o.description}: {verdict}")
        return "\n".join(lines)


# -- tamper classes ---------------------------------------------------------
# Each takes (rng, graph, rotation, certificates) where rotation and
# certificates are private copies, mutates them, and returns a one-line
# description of what it corrupted.

_COUNTER_FIELDS = (
    "depth",
    "n",
    "m",
    "f",
    "subtree_vertices",
    "subtree_degree",
    "subtree_faces",
)


def _tamper_bit_flip(
    rng: random.Random, graph: Graph, rotation: RotationMap, certs: CertificateSet
) -> str:
    victim = rng.choice(sorted(certs, key=repr))
    fname = rng.choice(_COUNTER_FIELDS)
    label = certs[victim]
    old = getattr(label, fname)
    bit = rng.randrange(max(1, old.bit_length() + 1))
    setattr(label, fname, old ^ (1 << bit))
    return f"flipped bit {bit} of {fname} at node {victim!r} ({old} -> {old ^ (1 << bit)})"


def _tamper_rotation_swap(
    rng: random.Random, graph: Graph, rotation: RotationMap, certs: CertificateSet
) -> str:
    # A transposition only changes the cyclic order at degree >= 3; on
    # degree-<=2 networks fall back to breaking the permutation property.
    candidates = sorted((v for v in rotation if len(rotation[v]) >= 3), key=repr)
    if candidates:
        victim = rng.choice(candidates)
        ring = list(rotation[victim])
        i = rng.randrange(len(ring))
        j = (i + 1) % len(ring)
        ring[i], ring[j] = ring[j], ring[i]
        rotation[victim] = tuple(ring)
        return (
            f"swapped neighbors {ring[j]!r} and {ring[i]!r} "
            f"in the rotation of node {victim!r}"
        )
    victim = rng.choice(sorted((v for v in rotation if rotation[v]), key=repr))
    ring = list(rotation[victim])
    if len(ring) == 1:
        # Replace the lone neighbor with the node itself: not a neighbor.
        replaced = ring[0]
        ring[0] = victim
    else:
        i = rng.randrange(len(ring))
        replaced = ring[i]
        ring[i] = ring[(i + 1) % len(ring)]  # duplicate entry
    rotation[victim] = tuple(ring)
    return f"replaced {replaced!r} in the rotation of node {victim!r} (non-permutation)"


def _tamper_face_forgery(
    rng: random.Random, graph: Graph, rotation: RotationMap, certs: CertificateSet
) -> str:
    # Crown a non-leader dart leader of a new face and fix up the forger's
    # own tallies so all *its* counting checks pass.
    options = [
        (v, w)
        for v in sorted(certs, key=repr)
        for w, dart in sorted(certs[v].darts.items(), key=lambda kv: repr(kv[0]))
        if dart.face != (v, w)
    ]
    v, w = rng.choice(options)
    label = certs[v]
    dart = label.darts[w]
    dart.face = (v, w)
    dart.index = 0
    label.face_leaders += 1
    label.subtree_faces += 1
    return f"node {v!r} forged dart {(v, w)!r} into a face leader (+1 face)"


def _tamper_collusion(
    rng: random.Random, graph: Graph, rotation: RotationMap, certs: CertificateSet
) -> str:
    u, v = rng.choice(sorted(graph.edges(), key=repr))
    certs[u].f += 1
    certs[v].f += 1
    return f"colluding pair {u!r}, {v!r} both announce f+1 faces"


def _tamper_global_forgery(
    rng: random.Random, graph: Graph, rotation: RotationMap, certs: CertificateSet
) -> str:
    delta = rng.choice((1, 2))
    for v in certs:
        certs[v].f += delta
    return f"all {len(certs)} nodes announce f+{delta} faces (globally consistent)"


TAMPER_CLASSES: dict[str, Callable[..., str]] = {
    "bit-flip": _tamper_bit_flip,
    "rotation-swap": _tamper_rotation_swap,
    "face-forgery": _tamper_face_forgery,
    "collusion": _tamper_collusion,
    "global-forgery": _tamper_global_forgery,
}


def apply_tamper(
    name: str,
    graph: Graph,
    rotation: RotationMap,
    certificates: CertificateSet,
    seed: int | random.Random = 0,
) -> str:
    """Apply one tamper class **in place** to ``(rotation, certificates)``.

    The mutation entry point for callers outside the suite — the
    self-healing chaos bench and tests corrupt a live embedding result
    with it and then watch the certifier catch and heal the damage.
    Returns the tamper's one-line description.
    """
    if name not in TAMPER_CLASSES:
        raise ValueError(f"unknown tamper class {name!r}; options: {sorted(TAMPER_CLASSES)}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    return TAMPER_CLASSES[name](rng, graph, rotation, certificates)


def run_tamper_suite(
    graph: Graph,
    rotation: Mapping[NodeId, Sequence[NodeId]],
    certificates: CertificateSet,
    seed: int = 0,
    trials: int = 3,
    classes: Sequence[str] | None = None,
    bandwidth_words: int = VERIFIER_BANDWIDTH_WORDS,
) -> TamperSuiteReport:
    """Run every tamper class ``trials`` times against the real verifier.

    Each trial gets private copies of the rotation and certificates, so
    the honest originals survive.  Soundness holds iff
    ``report.all_detected``; a missed tamper is a bug, and callers
    (the CLI, E14, the test suite) treat it as a hard failure.
    """
    if graph.num_nodes < 2:
        raise ValueError("tamper suite needs at least one edge to corrupt")
    names = list(classes) if classes is not None else list(TAMPER_CLASSES)
    unknown = [c for c in names if c not in TAMPER_CLASSES]
    if unknown:
        raise ValueError(f"unknown tamper classes {unknown!r}; options: {sorted(TAMPER_CLASSES)}")
    rng = random.Random(seed)
    outcomes: list[TamperOutcome] = []
    for name in names:
        tamper = TAMPER_CLASSES[name]
        for _ in range(trials):
            rot_copy: RotationMap = {v: tuple(rotation[v]) for v in rotation}
            certs_copy = certificates.copy()
            description = tamper(rng, graph, rot_copy, certs_copy)
            report = verify_distributed(
                graph, rot_copy, certs_copy, bandwidth_words=bandwidth_words
            )
            outcomes.append(
                TamperOutcome(
                    tamper_class=name,
                    description=description,
                    detected=not report.accepted,
                    rejections=report.rejections,
                )
            )
    return TamperSuiteReport(outcomes=outcomes, nodes=graph.num_nodes)
