"""Distributed certification: self-verifying planar embeddings.

The embedding pipeline's output — per-vertex clockwise orders scattered
across the network — was previously checkable only by gathering it all
centrally.  This package makes the output *self-verifying* in the
proof-labeling sense (Korman-Kutten-Peleg; planarity: Feuilloley et
al., PODC 2020):

* :mod:`~repro.certify.labels` — the O(log n)-bit per-node certificates;
* :mod:`~repro.certify.prover` — certificate construction after the
  embedding terminates (election + BFS + convergecast, O(D) rounds);
* :mod:`~repro.certify.verifier` — the distributed verifier, a real
  CONGEST node program: one label exchange per edge, local predicate
  checks, network-wide verdict in O(D) rounds, all ledgered and traced;
* :mod:`~repro.certify.adversary` — the tamper harness asserting
  soundness: every corruption class is rejected by at least one node;
* :mod:`~repro.certify.compact` — the O(log n)-*bit* packed label codec
  and the shim that verifies packed labels with the unchanged verifier;
* :mod:`~repro.certify.delta` — incremental re-certification: patch
  only the dirty region under edge churn or after a chaos heal, with a
  full-rebuild fallback past a dirty-region threshold.
"""

from .adversary import (
    TAMPER_CLASSES,
    TamperOutcome,
    TamperSuiteReport,
    apply_tamper,
    run_tamper_suite,
)
from .compact import (
    CompactCertificateSet,
    CompactDecodeError,
    encode_certificates,
    verify_compact,
)
from .delta import (
    DEFAULT_FALLBACK_RATIO,
    ChurnReport,
    DynamicCertifiedEmbedding,
    PatchRecord,
    RepairOutcome,
    repair_certificates,
)
from .labels import CertificateSet, DartLabel, NodeCertificate
from .prover import build_certificates, face_labels
from .verifier import (
    CertificationReport,
    CertVerifierProgram,
    Rejection,
    centralized_check_rounds,
    verify_distributed,
)

__all__ = [
    "CertificateSet",
    "DartLabel",
    "NodeCertificate",
    "build_certificates",
    "face_labels",
    "CertVerifierProgram",
    "CertificationReport",
    "Rejection",
    "verify_distributed",
    "centralized_check_rounds",
    "TamperOutcome",
    "TamperSuiteReport",
    "TAMPER_CLASSES",
    "apply_tamper",
    "run_tamper_suite",
    "CompactCertificateSet",
    "CompactDecodeError",
    "encode_certificates",
    "verify_compact",
    "ChurnReport",
    "DynamicCertifiedEmbedding",
    "DEFAULT_FALLBACK_RATIO",
    "PatchRecord",
    "RepairOutcome",
    "repair_certificates",
]
