"""Job specifications for the embedding service.

A *job* is one unit of work for the service driver: a serialized graph
plus the kind of computation to run on it and its configuration.  Jobs
travel as JSONL — one JSON object per line — both into ``repro serve``
/ ``repro batch`` and out of them as verdicts, and the same flat
representation is what crosses the process boundary to pool workers
(primitives only, no rich objects — the MPC framing of Chang & Zheng:
stateless workers over serialized subproblems).

Job object fields:

``kind``
    ``"embed"`` (default), ``"certify"`` (embed + distributed
    certification), ``"heal"`` (the self-healing pipeline under an
    optional chaos schedule), or ``"churn"`` (embed + certify, then a
    seeded edge insert/delete workload with per-op re-certification —
    see :mod:`repro.certify.delta`).
``edges`` / ``demo``
    Exactly one graph source: ``edges`` is a list of ``[u, v]`` pairs
    (int or string node IDs, insertion order preserved — it is
    observable in the output rotation); ``demo`` is a generator spec
    like ``["grid", 16, 16]`` accepted by
    :func:`repro.planar.generators.demo_graph`, expanded at parse time
    so caching and canonical hashing always see the concrete graph.
``id``
    Optional caller-chosen string echoed on the verdict (defaults to
    ``"job-<index>"``).
``seed``
    Seed for randomized ``demo`` families (default 0).
``config``
    Optional dict: ``bandwidth`` (words/edge/round, default 1),
    ``shard_workers`` (per-job recursion worker processes, default 0 =
    sequential; see :mod:`repro.shard`), and ``deadline_s`` (per-attempt
    wall-clock budget in seconds, overriding the driver's
    ``--deadline``; see :mod:`repro.serve.resilience`) for all kinds;
    ``faults`` (a chaos spec string), ``fault_seed``, and ``max_retries``
    additionally for ``heal``; ``churn_ops`` (operation count, default
    8), ``churn_seed`` (op-plan seed, default 0), and ``incremental``
    (patch the dirty region vs full rebuild per op, default true)
    additionally for ``churn``.  ``shard_workers`` never changes a
    verdict — the sharded path is bit-identical — and is ignored under
    fault injection, but an *explicit* value does enter the cache key
    like any other config field, so omit it when cache sharing across
    settings matters (the server-side default is applied after key
    computation).  Unknown keys are rejected — a typo'd config silently
    changing the cache key would be a debugging nightmare.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable

from ..planar.generators import demo_graph
from ..planar.graph import Graph, NodeId

__all__ = ["Job", "JobSpecError", "JOB_KINDS", "parse_job", "load_jobs", "config_key"]

JOB_KINDS = ("embed", "certify", "heal", "churn")

_COMMON_CONFIG = {"bandwidth", "shard_workers", "deadline_s"}
_HEAL_CONFIG = {"faults", "fault_seed", "max_retries"}
_CHURN_CONFIG = {"churn_ops", "churn_seed", "incremental"}


class JobSpecError(ValueError):
    """A malformed job line or job object."""


def _default_config(kind: str) -> dict:
    config: dict = {"bandwidth": 1}
    if kind == "heal":
        config.update({"faults": None, "fault_seed": 0, "max_retries": 3})
    elif kind == "churn":
        config.update({"churn_ops": 8, "churn_seed": 0, "incremental": True})
    return config


@dataclass
class Job:
    """One parsed, validated unit of service work."""

    index: int
    id: str
    kind: str
    graph: Graph
    config: dict
    source: dict = field(default_factory=dict)  # the original spec, for echoing

    def payload(self) -> dict:
        """The flat, picklable form shipped to a pool worker: primitives
        only, adjacency insertion order preserved."""
        return {
            "id": self.id,
            "kind": self.kind,
            "nodes": list(self.graph.nodes()),
            "edges": [list(e) for e in self.graph.edges()],
            "config": dict(self.config),
        }


def config_key(config: dict) -> str:
    """The canonical cache-key serialization of a job config."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


def _check_node(value) -> NodeId:
    if not isinstance(value, (int, str)):
        raise JobSpecError(
            f"node IDs must be ints or strings, got {type(value).__name__}: {value!r}"
        )
    return value


def parse_job(obj: dict, index: int = 0) -> Job:
    """Validate one decoded job object into a :class:`Job`."""
    if not isinstance(obj, dict):
        raise JobSpecError(f"job {index}: expected a JSON object, got {type(obj).__name__}")
    unknown = set(obj) - {"kind", "edges", "demo", "id", "seed", "config"}
    if unknown:
        raise JobSpecError(f"job {index}: unknown fields {sorted(unknown)}")
    kind = obj.get("kind", "embed")
    if kind not in JOB_KINDS:
        raise JobSpecError(f"job {index}: unknown kind {kind!r}; options: {list(JOB_KINDS)}")

    if ("edges" in obj) == ("demo" in obj):
        raise JobSpecError(f"job {index}: provide exactly one of 'edges' or 'demo'")
    seed = obj.get("seed", 0)
    if not isinstance(seed, int):
        raise JobSpecError(f"job {index}: 'seed' must be an integer")
    if "demo" in obj:
        spec = obj["demo"]
        if not isinstance(spec, list) or not spec:
            raise JobSpecError(f"job {index}: 'demo' must be a non-empty list")
        try:
            graph = demo_graph(spec, seed=seed)
        except ValueError as exc:
            raise JobSpecError(f"job {index}: {exc}") from exc
    else:
        edges = obj["edges"]
        if not isinstance(edges, list):
            raise JobSpecError(f"job {index}: 'edges' must be a list of [u, v] pairs")
        graph = Graph()
        for pos, pair in enumerate(edges):
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise JobSpecError(f"job {index}: edge {pos} is not a [u, v] pair: {pair!r}")
            u, v = _check_node(pair[0]), _check_node(pair[1])
            if u == v:
                raise JobSpecError(f"job {index}: edge {pos} is a self-loop at {u!r}")
            graph.add_edge(u, v)
    if graph.num_nodes == 0:
        raise JobSpecError(f"job {index}: graph has no vertices")
    if not graph.is_connected():
        raise JobSpecError(f"job {index}: graph must be connected")

    config = _default_config(kind)
    allowed = _COMMON_CONFIG | (
        _HEAL_CONFIG if kind == "heal"
        else _CHURN_CONFIG if kind == "churn"
        else set()
    )
    supplied = obj.get("config", {})
    if not isinstance(supplied, dict):
        raise JobSpecError(f"job {index}: 'config' must be an object")
    unknown = set(supplied) - allowed
    if unknown:
        raise JobSpecError(
            f"job {index}: unknown config keys for kind {kind!r}: {sorted(unknown)}"
        )
    config.update(supplied)
    if not isinstance(config["bandwidth"], int) or config["bandwidth"] < 1:
        raise JobSpecError(f"job {index}: config.bandwidth must be an integer >= 1")
    # Optional on purpose (no default): an absent key keeps the cache
    # key identical to pre-sharding job files.
    if "shard_workers" in config and (
        not isinstance(config["shard_workers"], int) or config["shard_workers"] < 0
    ):
        raise JobSpecError(f"job {index}: config.shard_workers must be an integer >= 0")
    if "deadline_s" in config and (
        isinstance(config["deadline_s"], bool)
        or not isinstance(config["deadline_s"], (int, float))
        or config["deadline_s"] <= 0
    ):
        raise JobSpecError(f"job {index}: config.deadline_s must be a number > 0")
    if kind == "heal":
        if config["faults"] is not None and not isinstance(config["faults"], str):
            raise JobSpecError(f"job {index}: config.faults must be a spec string or null")
        if not isinstance(config["fault_seed"], int):
            raise JobSpecError(f"job {index}: config.fault_seed must be an integer")
        if not isinstance(config["max_retries"], int) or config["max_retries"] < 0:
            raise JobSpecError(f"job {index}: config.max_retries must be an integer >= 0")
    if kind == "churn":
        if not isinstance(config["churn_ops"], int) or config["churn_ops"] < 1:
            raise JobSpecError(f"job {index}: config.churn_ops must be an integer >= 1")
        if not isinstance(config["churn_seed"], int):
            raise JobSpecError(f"job {index}: config.churn_seed must be an integer")
        if not isinstance(config["incremental"], bool):
            raise JobSpecError(f"job {index}: config.incremental must be a boolean")
        if graph.num_nodes < 2:
            raise JobSpecError(f"job {index}: churn needs at least two nodes")

    job_id = obj.get("id", f"job-{index}")
    if not isinstance(job_id, str):
        raise JobSpecError(f"job {index}: 'id' must be a string")
    return Job(index=index, id=job_id, kind=kind, graph=graph, config=config, source=obj)


def load_jobs(source: str | IO[str] | Iterable[str]) -> list[Job]:
    """Parse a JSONL job stream (path, open file, or iterable of lines).

    Blank lines and ``#`` comment lines are skipped.  Raises
    :class:`JobSpecError` with the line number on the first bad line —
    a job file is a unit of intent, so partial acceptance would hide
    typos until after hours of compute.
    """
    if isinstance(source, str):
        with open(source) as f:
            return load_jobs(f)
    jobs: list[Job] = []
    for lineno, line in enumerate(source, 1):
        body = line.strip()
        if not body or body.startswith("#"):
            continue
        try:
            obj = json.loads(body)
        except json.JSONDecodeError as exc:
            raise JobSpecError(f"line {lineno}: invalid JSON: {exc}") from exc
        try:
            jobs.append(parse_job(obj, index=len(jobs)))
        except JobSpecError as exc:
            raise JobSpecError(f"line {lineno}: {exc}") from exc
    return jobs
