"""The async batch driver: submission queue, pool workers, result cache.

``ServiceDriver`` turns the library's one-shot entry points into a
service: jobs go onto an :mod:`asyncio` submission queue, a fixed set of
consumer tasks feeds them to a process pool of 1..N stateless workers
(or runs them inline with ``workers=0`` — the sequential reference
driver the differential suite compares pools against), and every job
resolves to a typed :class:`JobOutcome` — ``ok``, ``non-planar``,
``degraded``, ``error``, or the resilience layer's ``timeout`` /
``quarantined`` / ``shed`` — in **deterministic submission order**
regardless of completion order.

The pool rides a :class:`~repro.serve.resilience.PoolSupervisor`: a
killed worker (``BrokenProcessPool``) costs one pool respawn, the
in-flight jobs are requeued with seeded backoff
(:func:`~repro.serve.resilience.retry_delay`), and a job that keeps
killing workers is quarantined instead of poisoning the batch —
every other job still gets its deterministic submission-order verdict.

With a :class:`~repro.serve.cache.ResultCache` attached, each job is
canonically hashed before dispatch; exact and canonical hits skip the
pool entirely, and concurrent duplicates of one in-flight computation
are **coalesced** (single-flight): the first occurrence computes, the
rest await its result, so a batch of R identical topologies performs
exactly one embedding computation at any worker count.  Cache counters
(`hits_exact` / `hits_canonical` / `hits_coalesced` / `misses`) surface
in the aggregate batch report; ``misses`` equals the number of actual
computations.

The process boundary carries only primitives (:meth:`Job.payload` /
verdict dicts), and every verdict is normalized through one JSON
round-trip before leaving the worker — so a warm cache hit is
*bit-identical* (same ``json.dumps`` bytes) to its cold run, which
``tests/serve/test_service_differential.py`` asserts.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import time
import warnings
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from ..obs.flightrec import SERVICE_LANE, default_flight_recorder
from ..planar.graph import Graph
from .cache import ResultCache
from .canon import CanonicalForm, canonical_form, exact_fingerprint
from .jobs import Job, config_key
from .resilience import (
    ChaosKilledError,
    ChaosPool,
    PoolSupervisor,
    ResiliencePolicy,
    ResilienceStats,
    chaos_execute_inline,
    chaos_execute_job,
)

__all__ = ["JobOutcome", "ServiceDriver", "execute_job", "OUTCOME_EXIT"]

#: CLI exit code contributed by each per-job outcome; a batch exits with
#: the maximum over its jobs (see the exit-code table in README.md).
#: ``timeout`` / ``quarantined`` / ``shed`` are the resilience layer's
#: typed verdicts for jobs the service could not complete — worse than a
#: degraded result, because no result was produced at all.
OUTCOME_EXIT = {
    "ok": 0,
    "non-planar": 1,
    "error": 3,
    "degraded": 4,
    "timeout": 5,
    "quarantined": 6,
    "shed": 7,
}


def _normalize(record: dict) -> dict:
    """One canonical JSON round-trip: the bit-identical-verdict contract
    compares ``json.dumps(..., sort_keys=True)`` of these."""
    return json.loads(json.dumps(record, sort_keys=True, default=repr))


def _rotation_repr(rotation: dict) -> dict:
    return {repr(v): [repr(u) for u in order] for v, order in rotation.items()}


def execute_job(payload: dict) -> dict:
    """Run one serialized job to a verdict record.  **Worker-side**: this
    is the function shipped to pool processes, so it takes primitives and
    returns a plain normalized dict; every failure mode is folded into a
    typed outcome rather than an escaping exception.

    Records look like ``{"outcome": "ok", "report": {...},
    "rotation": {...}}`` (plus ``witness`` for non-planar, ``error`` /
    ``diagnosis`` for failures).
    """
    from ..core import NonPlanarNetworkError, distributed_planar_embedding

    graph = Graph()
    for v in payload.get("nodes", ()):
        graph.add_node(v)
    for u, v in payload.get("edges", ()):
        graph.add_edge(u, v)
    kind = payload.get("kind", "embed")
    config = payload.get("config", {})
    bandwidth = config.get("bandwidth", 1)
    shard_workers = config.get("shard_workers", 0)

    try:
        if kind in ("embed", "certify"):
            result = distributed_planar_embedding(
                graph,
                bandwidth_words=bandwidth,
                certify=(kind == "certify"),
                shard_workers=shard_workers,
            )
            record = {
                "outcome": "ok",
                "report": result.to_report(),
                "rotation": _rotation_repr(result.rotation),
            }
            if kind == "certify" and not result.certification.accepted:
                # The verifier rejected our own output: an algorithm bug
                # (CLI exit 3), never cached.
                record["outcome"] = "error"
                record["error"] = {
                    "type": "CertificationRejected",
                    "message": result.certification.summary(),
                }
        elif kind == "churn":
            from ..certify import DynamicCertifiedEmbedding

            engine = DynamicCertifiedEmbedding(
                graph,
                incremental=config.get("incremental", True),
                bandwidth_words=bandwidth,
            )
            churn = engine.run_churn(
                config.get("churn_ops", 8), seed=config.get("churn_seed", 0)
            )
            result = engine.to_result()
            report = result.to_report()
            report["churn"] = churn.to_dict()
            record = {
                "outcome": "ok",
                "report": report,
                "rotation": _rotation_repr(result.rotation),
            }
            if not churn.accepted:
                # A patched (or rebuilt) certificate the verifier
                # rejected: an algorithm bug, never cached.
                record["outcome"] = "error"
                record["error"] = {
                    "type": "CertificationRejected",
                    "message": churn.final_certification.summary(),
                }
        elif kind == "heal":
            from ..congest.faults import FaultPlan
            from ..core import self_healing_embedding

            spec = config.get("faults")
            plan = (
                FaultPlan.parse(spec, seed=config.get("fault_seed", 0))
                if spec is not None
                else None
            )
            result = self_healing_embedding(
                graph,
                bandwidth_words=bandwidth,
                max_retries=config.get("max_retries", 3),
                faults=plan,
            )
            if getattr(result, "degraded", False):
                record = {
                    "outcome": "degraded",
                    "report": result.to_report(),
                    "diagnosis": result.diagnosis,
                }
            else:
                record = {
                    "outcome": "ok",
                    "report": result.to_report(),
                    "rotation": _rotation_repr(result.rotation),
                }
        else:
            record = {
                "outcome": "error",
                "error": {"type": "JobSpecError", "message": f"unknown kind {kind!r}"},
            }
    except NonPlanarNetworkError:
        from ..planar.kuratowski import classify_kuratowski, kuratowski_subgraph

        witness = kuratowski_subgraph(graph)
        record = {
            "outcome": "non-planar",
            "witness": {
                "kind": classify_kuratowski(witness),
                "nodes": witness.num_nodes,
                "edges": sorted([list(e) for e in witness.edges()], key=repr),
            },
        }
    except Exception as exc:  # noqa: BLE001 - worker boundary: every
        # failure becomes a typed per-job outcome, the pool stays alive.
        record = {
            "outcome": "error",
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
    return _normalize(record)


@dataclass
class JobOutcome:
    """One job's typed result, in wire-ready form."""

    index: int
    id: str
    kind: str
    cache: str  # "miss" | "exact" | "canonical" | "coalesced" | "off" | "shed"
    wall_s: float  # submission-to-resolution latency (includes queue wait)
    record: dict

    @property
    def outcome(self) -> str:
        return self.record["outcome"]

    @property
    def exit_code(self) -> int:
        return OUTCOME_EXIT.get(self.outcome, 3)

    def to_json_obj(self) -> dict:
        """The JSONL verdict line ``repro serve`` streams."""
        return {
            "type": "job-verdict",
            "index": self.index,
            "id": self.id,
            "kind": self.kind,
            "outcome": self.outcome,
            "cache": self.cache,
            "wall_s": round(self.wall_s, 6),
            "verdict": {k: v for k, v in self.record.items() if k != "outcome"},
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a pre-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class ServiceDriver:
    """Async job driver over a process pool with a canonical result cache.

    ``workers=0`` executes jobs inline on the event loop — strictly
    sequential, the reference the differential suite holds pools to;
    ``workers=N`` runs up to N jobs concurrently in pool processes.
    ``cache=None`` disables caching *and* single-flight coalescing
    (every job genuinely computes — what the cold side of the E19 bench
    measures).

    ``shard_workers=K`` makes every embed/certify job that does not pick
    its own value shard its recursion over K extra processes
    (:mod:`repro.shard`).  The two pool layers multiply: ``workers``
    jobs each spawning ``shard_workers`` recursion workers wants
    ``workers * max(1, shard_workers)`` cores.  When that product
    exceeds ``os.cpu_count()``, the driver clamps ``shard_workers`` to
    the largest fitting value (possibly 0) and emits a
    ``RuntimeWarning`` — oversubscribed process pools degrade *both*
    layers' latency, and job-level parallelism is the better-amortized
    of the two (one pickle per job vs. one snapshot per plan point).
    Results are unaffected either way: the sharded path is
    bit-identical to sequential execution.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        shard_workers: int = 0,
        resilience: ResiliencePolicy | None = None,
        chaos: ChaosPool | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = inline sequential)")
        if shard_workers < 0:
            raise ValueError("shard_workers must be >= 0 (0 = sequential recursion)")
        cores = os.cpu_count() or 1
        budget = max(1, self.__class__._core_budget(workers, cores))
        self.shard_clamp: dict | None = None
        if shard_workers > budget and shard_workers > 1:
            clamped = budget if budget >= 2 else 0
            warnings.warn(
                f"workers={workers} x shard_workers={shard_workers} oversubscribes"
                f" {cores} cores; clamping shard_workers to {clamped}",
                RuntimeWarning,
                stacklevel=2,
            )
            # Kept for the aggregate report: stderr warnings vanish in
            # automation, the --json report does not.
            self.shard_clamp = {
                "requested": shard_workers,
                "clamped": clamped,
                "workers": workers,
                "cores": cores,
            }
            shard_workers = clamped
        self.workers = workers
        self.cache = cache
        self.shard_workers = shard_workers
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        self.chaos = chaos
        self.rstats = ResilienceStats()

    @staticmethod
    def _core_budget(workers: int, cores: int) -> int:
        """Cores left per job for recursion sharding."""
        return cores // max(1, workers)

    # -- public API ------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        on_result: Callable[[JobOutcome], None] | None = None,
    ) -> list[JobOutcome]:
        """Run ``jobs`` to completion; outcomes in submission order.

        ``on_result`` is invoked once per job, also in submission order,
        as soon as that job *and all earlier ones* finished — the
        streaming hook ``repro serve`` uses to emit verdict lines.
        """
        return asyncio.run(self.run_async(jobs, on_result=on_result))

    async def run_async(
        self,
        jobs: Sequence[Job],
        on_result: Callable[[JobOutcome], None] | None = None,
    ) -> list[JobOutcome]:
        loop = asyncio.get_running_loop()
        policy = self.resilience
        queue: asyncio.Queue = asyncio.Queue(maxsize=policy.queue_limit)
        inflight: dict = {}
        submitted = time.perf_counter()
        futures: list[asyncio.Future] = [loop.create_future() for _ in jobs]
        n_consumers = max(1, self.workers)
        supervisor = (
            PoolSupervisor(self.workers, self.rstats) if self.workers else None
        )
        consumers = [
            asyncio.ensure_future(
                self._consume(queue, supervisor, inflight, loop, submitted)
            )
            for _ in range(n_consumers)
        ]
        producer = asyncio.ensure_future(
            self._produce(jobs, futures, queue, n_consumers, submitted)
        )
        try:
            outcomes: list[JobOutcome] = []
            for future in futures:
                outcome = await future
                if on_result is not None:
                    on_result(outcome)
                outcomes.append(outcome)
            return outcomes
        finally:
            producer.cancel()
            for consumer in consumers:
                consumer.cancel()
            await asyncio.gather(producer, *consumers, return_exceptions=True)
            if supervisor is not None:
                supervisor.shutdown()

    # -- internals -------------------------------------------------------

    async def _produce(self, jobs, futures, queue, n_consumers, submitted) -> None:
        """Admission control: enqueue jobs, shedding past the bound.

        With ``queue_limit=0`` the queue is unbounded and every job is
        admitted.  With a bound, the enqueue loop never yields, so the
        shed set is deterministic: a batch submits all at once, and
        exactly the jobs beyond the queue bound are refused with a
        typed ``shed`` outcome (load shedding at admission — the queue
        depth *is* the backlog, since consumers have not run yet).
        """
        limit = self.resilience.queue_limit
        flight = default_flight_recorder()
        for job, future in zip(jobs, futures):
            try:
                queue.put_nowait((job, future))
            except asyncio.QueueFull:
                self.rstats.shed += 1
                if flight is not None:
                    flight.record(
                        SERVICE_LANE, "shed", None, job=job.id, queue_limit=limit
                    )
                record = _normalize({
                    "outcome": "shed",
                    "shed": {"queue_limit": limit},
                })
                if not future.done():
                    future.set_result(self._outcome(job, "shed", submitted, record))
        for _ in range(n_consumers):
            await queue.put(None)  # one shutdown sentinel per consumer

    async def _consume(self, queue, supervisor, inflight, loop, submitted) -> None:
        while True:
            item = await queue.get()
            if item is None:
                return
            job, future = item
            try:
                outcome = await self._process(job, supervisor, inflight, loop, submitted)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # infrastructure failure the retry
                # ladder could not absorb: still a typed per-job error —
                # setting the exception on the future would abort the
                # result loop and strip every later job of its verdict.
                record = _normalize({
                    "outcome": "error",
                    "error": {
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "where": "driver",
                    },
                })
                outcome = self._outcome(
                    job, "off" if self.cache is None else "miss", submitted, record
                )
            if not future.done():
                future.set_result(outcome)

    async def _process(self, job: Job, supervisor, inflight, loop, submitted) -> JobOutcome:
        cache = self.cache
        if cache is None:
            record = await self._execute(job, supervisor, loop)
            return self._outcome(job, "off", submitted, record)

        form = canonical_form(job.graph)
        exact = exact_fingerprint(job.graph)
        key = (form.hash, job.kind, config_key(job.config))
        hit = cache.lookup(key, exact, form, job.graph)
        if hit is not None:
            return self._outcome(job, hit.tier, submitted, hit.verdict)

        flight_key = (key, exact)
        waiter = inflight.get(flight_key)
        if waiter is not None:
            # Single-flight: an identical job is already computing;
            # share its verdict instead of burning a worker on it.
            record = await asyncio.shield(waiter)
            cache.stats.hits_coalesced += 1
            return self._outcome(job, "coalesced", submitted, record)

        waiter = loop.create_future()
        inflight[flight_key] = waiter
        cache.stats.misses += 1
        try:
            record = await self._execute(job, supervisor, loop)
        except BaseException as exc:
            if not waiter.done():
                waiter.set_exception(exc)
            inflight.pop(flight_key, None)
            raise
        inflight.pop(flight_key, None)
        waiter.set_result(record)
        if record["outcome"] in ("ok", "non-planar"):
            # Churn verdicts are exact-tier only: the op plan picks
            # endpoints by repr order, so it is not invariant under the
            # relabelings a canonical remap hit would equate — and the
            # rotation describes the churned edge set, not the
            # submitted one.
            canonical_rotation = (
                None
                if job.kind == "churn"
                else self._canonical_rotation(job.graph, form, record)
            )
            cache.store(key, exact, record, canonical_rotation)
        return self._outcome(job, "miss", submitted, record)

    async def _execute(self, job: Job, supervisor, loop) -> dict:
        """Run one job to a verdict record under the resilience policy:
        per-attempt deadline, seeded backoff between attempts, pool
        respawn + requeue on worker death, quarantine when the retry
        budget is spent on pool deaths, ``timeout`` when it is spent on
        deadlines.  Worker-side failures come back as typed records and
        are never retried — they are deterministic job failures."""
        payload = job.payload()
        # Apply the driver-level sharding default *after* the cache key
        # was computed from job.config: sharding never changes results,
        # so jobs served at different --shard-workers settings must keep
        # sharing cache entries.  A job's own explicit value wins.
        if self.shard_workers and "shard_workers" not in payload["config"]:
            payload["config"]["shard_workers"] = self.shard_workers
        policy = self.resilience
        deadline = payload["config"].get("deadline_s", policy.deadline_s)
        attempts = 1 + policy.max_retries
        pool_deaths = 0
        last_error: dict | None = None
        flight = default_flight_recorder()
        for attempt in range(attempts):
            if attempt:
                self.rstats.retries += 1
                delay = policy.delay(job.id, attempt)
                if flight is not None:
                    flight.record(
                        SERVICE_LANE, "retry", None,
                        job=job.id, attempt=attempt, backoff_s=round(delay, 6),
                    )
                if delay:
                    await asyncio.sleep(delay)
            generation = supervisor.generation if supervisor is not None else 0
            try:
                if supervisor is None:
                    # Inline sequential reference path: same worker
                    # function, same serialized payload, no process hop.
                    # Deadlines cannot preempt it (it blocks the loop).
                    if self.chaos is not None:
                        return chaos_execute_inline(payload, self.chaos, attempt)
                    return execute_job(payload)
                if self.chaos is not None:
                    future = supervisor.submit(
                        loop, chaos_execute_job, payload, self.chaos.to_dict(), attempt
                    )
                else:
                    future = supervisor.submit(loop, execute_job, payload)
                if deadline is not None:
                    return await asyncio.wait_for(future, timeout=deadline)
                return await future
            except asyncio.CancelledError:
                raise
            except TimeoutError:
                # The attempt's budget ran out; the abandoned worker
                # computation finishes (or dies) on its own and its
                # result is discarded.
                self.rstats.timeouts += 1
                last_error = {
                    "type": "DeadlineExceeded",
                    "message": f"attempt {attempt + 1}/{attempts} exceeded"
                               f" the {deadline}s deadline",
                }
                if flight is not None:
                    flight.record(
                        SERVICE_LANE, "job-timeout", None,
                        job=job.id, attempt=attempt, deadline_s=deadline,
                    )
                continue
            except (BrokenExecutor, ChaosKilledError) as exc:
                # Worker death: the pool (or its inline stand-in) died
                # under this job.  Heal the pool once across however
                # many consumers observed the same death, then requeue.
                pool_deaths += 1
                self.rstats.pool_deaths += 1
                last_error = {
                    "type": type(exc).__name__,
                    "message": str(exc) or "worker process died",
                }
                if flight is not None:
                    flight.record(
                        SERVICE_LANE, "pool-death", None, job=job.id, attempt=attempt
                    )
                if supervisor is not None:
                    await supervisor.heal(generation)
                self.rstats.requeued += 1
                after = policy.quarantine_after
                if after is not None and pool_deaths >= after:
                    break  # poison fast-path: stop burning retries on it
                continue
            except Exception as exc:
                # The worker folds job failures into records, so reaching
                # here means dispatch infrastructure failed in a way a
                # fresh pool would not fix (e.g. unpicklable payload).
                # Surface it as a typed error outcome, no retry.
                return _normalize({
                    "outcome": "error",
                    "error": {
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "where": "dispatch",
                    },
                })
        # Retry budget exhausted: a typed verdict, never an exception —
        # the rest of the batch keeps its deterministic outcomes.
        if pool_deaths:
            self.rstats.quarantined += 1
            if flight is not None:
                flight.record(
                    SERVICE_LANE, "quarantine", None,
                    job=job.id, pool_deaths=pool_deaths,
                )
            return _normalize({
                "outcome": "quarantined",
                "quarantined": {
                    "attempts": attempts,
                    "pool_deaths": pool_deaths,
                    "last_error": last_error,
                },
            })
        return _normalize({
            "outcome": "timeout",
            "timeout": {
                "attempts": attempts,
                "deadline_s": deadline,
                "last_error": last_error,
            },
        })

    @staticmethod
    def _outcome(job: Job, tier: str, submitted: float, record: dict) -> JobOutcome:
        return JobOutcome(
            index=job.index,
            id=job.id,
            kind=job.kind,
            cache=tier,
            wall_s=time.perf_counter() - submitted,
            record=record,
        )

    @staticmethod
    def _canonical_rotation(
        graph: Graph, form: CanonicalForm, record: dict
    ) -> dict[int, list[int]] | None:
        """Re-key the verdict's rotation by canonical rank (for remap
        hits); ``None`` when refinement wasn't discrete or there is no
        rotation (non-planar verdicts)."""
        rotation = record.get("rotation")
        if rotation is None or form.labels is None:
            return None
        by_repr = {repr(v): v for v in graph.nodes()}
        try:
            return {
                form.labels[by_repr[rv]]: [form.labels[by_repr[ru]] for ru in order]
                for rv, order in rotation.items()
            }
        except KeyError:
            return None  # repr round-trip mismatch; cache exact-only

    # -- aggregation -----------------------------------------------------

    def aggregate(self, outcomes: Sequence[JobOutcome], wall_s: float) -> dict:
        """The batch report: outcome counts, cache counters, throughput,
        and latency percentiles (JSON-ready)."""
        counts = {name: 0 for name in OUTCOME_EXIT}
        fault_stats: dict[str, int] = {}
        for outcome in outcomes:
            counts[outcome.outcome] = counts.get(outcome.outcome, 0) + 1
            report = outcome.record.get("report")
            if isinstance(report, dict):
                for key, value in (report.get("fault_stats") or {}).items():
                    if isinstance(value, int) and not isinstance(value, bool):
                        fault_stats[key] = fault_stats.get(key, 0) + value
        latencies = sorted(outcome.wall_s for outcome in outcomes)
        stats = self.cache.stats if self.cache is not None else None
        return {
            "type": "batch-report",
            "jobs": len(outcomes),
            "workers": self.workers,
            "outcomes": counts,
            "cache": stats.to_dict() if stats is not None else None,
            "computed": stats.misses if stats is not None else len(outcomes),
            "resilience": self.rstats.to_dict(),
            "shard_clamp": self.shard_clamp,
            "fault_stats": fault_stats or None,
            "wall_s": round(wall_s, 6),
            "jobs_per_s": round(len(outcomes) / wall_s, 3) if wall_s > 0 else None,
            "latency_s": {
                "p50": round(_percentile(latencies, 0.50), 6),
                "p99": round(_percentile(latencies, 0.99), 6),
                "max": round(latencies[-1], 6) if latencies else 0.0,
            },
            "exit_code": self.exit_code(outcomes),
        }

    @staticmethod
    def exit_code(outcomes: Sequence[JobOutcome]) -> int:
        """Batch partial-failure semantics: the worst per-job code wins
        (0 ok < 1 non-planar < 3 error < 4 degraded < 5 timeout
        < 6 quarantined < 7 shed, numerically)."""
        return max((outcome.exit_code for outcome in outcomes), default=0)
