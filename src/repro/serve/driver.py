"""The async batch driver: submission queue, pool workers, result cache.

``ServiceDriver`` turns the library's one-shot entry points into a
service: jobs go onto an :mod:`asyncio` submission queue, a fixed set of
consumer tasks feeds them to a ``ProcessPoolExecutor`` of 1..N stateless
workers (or runs them inline with ``workers=0`` — the sequential
reference driver the differential suite compares pools against), and
every job resolves to a typed :class:`JobOutcome` — ``ok``,
``non-planar``, ``degraded``, or ``error`` — in **deterministic
submission order** regardless of completion order.

With a :class:`~repro.serve.cache.ResultCache` attached, each job is
canonically hashed before dispatch; exact and canonical hits skip the
pool entirely, and concurrent duplicates of one in-flight computation
are **coalesced** (single-flight): the first occurrence computes, the
rest await its result, so a batch of R identical topologies performs
exactly one embedding computation at any worker count.  Cache counters
(`hits_exact` / `hits_canonical` / `hits_coalesced` / `misses`) surface
in the aggregate batch report; ``misses`` equals the number of actual
computations.

The process boundary carries only primitives (:meth:`Job.payload` /
verdict dicts), and every verdict is normalized through one JSON
round-trip before leaving the worker — so a warm cache hit is
*bit-identical* (same ``json.dumps`` bytes) to its cold run, which
``tests/serve/test_service_differential.py`` asserts.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from ..planar.graph import Graph
from .cache import ResultCache
from .canon import CanonicalForm, canonical_form, exact_fingerprint
from .jobs import Job, config_key

__all__ = ["JobOutcome", "ServiceDriver", "execute_job", "OUTCOME_EXIT"]

#: CLI exit code contributed by each per-job outcome; a batch exits with
#: the maximum over its jobs (see the exit-code table in README.md).
OUTCOME_EXIT = {"ok": 0, "non-planar": 1, "error": 3, "degraded": 4}


def _normalize(record: dict) -> dict:
    """One canonical JSON round-trip: the bit-identical-verdict contract
    compares ``json.dumps(..., sort_keys=True)`` of these."""
    return json.loads(json.dumps(record, sort_keys=True, default=repr))


def _rotation_repr(rotation: dict) -> dict:
    return {repr(v): [repr(u) for u in order] for v, order in rotation.items()}


def execute_job(payload: dict) -> dict:
    """Run one serialized job to a verdict record.  **Worker-side**: this
    is the function shipped to pool processes, so it takes primitives and
    returns a plain normalized dict; every failure mode is folded into a
    typed outcome rather than an escaping exception.

    Records look like ``{"outcome": "ok", "report": {...},
    "rotation": {...}}`` (plus ``witness`` for non-planar, ``error`` /
    ``diagnosis`` for failures).
    """
    from ..core import NonPlanarNetworkError, distributed_planar_embedding

    graph = Graph()
    for v in payload.get("nodes", ()):
        graph.add_node(v)
    for u, v in payload.get("edges", ()):
        graph.add_edge(u, v)
    kind = payload.get("kind", "embed")
    config = payload.get("config", {})
    bandwidth = config.get("bandwidth", 1)
    shard_workers = config.get("shard_workers", 0)

    try:
        if kind in ("embed", "certify"):
            result = distributed_planar_embedding(
                graph,
                bandwidth_words=bandwidth,
                certify=(kind == "certify"),
                shard_workers=shard_workers,
            )
            record = {
                "outcome": "ok",
                "report": result.to_report(),
                "rotation": _rotation_repr(result.rotation),
            }
            if kind == "certify" and not result.certification.accepted:
                # The verifier rejected our own output: an algorithm bug
                # (CLI exit 3), never cached.
                record["outcome"] = "error"
                record["error"] = {
                    "type": "CertificationRejected",
                    "message": result.certification.summary(),
                }
        elif kind == "churn":
            from ..certify import DynamicCertifiedEmbedding

            engine = DynamicCertifiedEmbedding(
                graph,
                incremental=config.get("incremental", True),
                bandwidth_words=bandwidth,
            )
            churn = engine.run_churn(
                config.get("churn_ops", 8), seed=config.get("churn_seed", 0)
            )
            result = engine.to_result()
            report = result.to_report()
            report["churn"] = churn.to_dict()
            record = {
                "outcome": "ok",
                "report": report,
                "rotation": _rotation_repr(result.rotation),
            }
            if not churn.accepted:
                # A patched (or rebuilt) certificate the verifier
                # rejected: an algorithm bug, never cached.
                record["outcome"] = "error"
                record["error"] = {
                    "type": "CertificationRejected",
                    "message": churn.final_certification.summary(),
                }
        elif kind == "heal":
            from ..congest.faults import FaultPlan
            from ..core import self_healing_embedding

            spec = config.get("faults")
            plan = (
                FaultPlan.parse(spec, seed=config.get("fault_seed", 0))
                if spec is not None
                else None
            )
            result = self_healing_embedding(
                graph,
                bandwidth_words=bandwidth,
                max_retries=config.get("max_retries", 3),
                faults=plan,
            )
            if getattr(result, "degraded", False):
                record = {
                    "outcome": "degraded",
                    "report": result.to_report(),
                    "diagnosis": result.diagnosis,
                }
            else:
                record = {
                    "outcome": "ok",
                    "report": result.to_report(),
                    "rotation": _rotation_repr(result.rotation),
                }
        else:
            record = {
                "outcome": "error",
                "error": {"type": "JobSpecError", "message": f"unknown kind {kind!r}"},
            }
    except NonPlanarNetworkError:
        from ..planar.kuratowski import classify_kuratowski, kuratowski_subgraph

        witness = kuratowski_subgraph(graph)
        record = {
            "outcome": "non-planar",
            "witness": {
                "kind": classify_kuratowski(witness),
                "nodes": witness.num_nodes,
                "edges": sorted([list(e) for e in witness.edges()], key=repr),
            },
        }
    except Exception as exc:  # noqa: BLE001 - worker boundary: every
        # failure becomes a typed per-job outcome, the pool stays alive.
        record = {
            "outcome": "error",
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
    return _normalize(record)


@dataclass
class JobOutcome:
    """One job's typed result, in wire-ready form."""

    index: int
    id: str
    kind: str
    cache: str  # "miss" | "exact" | "canonical" | "coalesced" | "off"
    wall_s: float  # submission-to-resolution latency (includes queue wait)
    record: dict

    @property
    def outcome(self) -> str:
        return self.record["outcome"]

    @property
    def exit_code(self) -> int:
        return OUTCOME_EXIT.get(self.outcome, 3)

    def to_json_obj(self) -> dict:
        """The JSONL verdict line ``repro serve`` streams."""
        return {
            "type": "job-verdict",
            "index": self.index,
            "id": self.id,
            "kind": self.kind,
            "outcome": self.outcome,
            "cache": self.cache,
            "wall_s": round(self.wall_s, 6),
            "verdict": {k: v for k, v in self.record.items() if k != "outcome"},
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) of a pre-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class ServiceDriver:
    """Async job driver over a process pool with a canonical result cache.

    ``workers=0`` executes jobs inline on the event loop — strictly
    sequential, the reference the differential suite holds pools to;
    ``workers=N`` runs up to N jobs concurrently in pool processes.
    ``cache=None`` disables caching *and* single-flight coalescing
    (every job genuinely computes — what the cold side of the E19 bench
    measures).

    ``shard_workers=K`` makes every embed/certify job that does not pick
    its own value shard its recursion over K extra processes
    (:mod:`repro.shard`).  The two pool layers multiply: ``workers``
    jobs each spawning ``shard_workers`` recursion workers wants
    ``workers * max(1, shard_workers)`` cores.  When that product
    exceeds ``os.cpu_count()``, the driver clamps ``shard_workers`` to
    the largest fitting value (possibly 0) and emits a
    ``RuntimeWarning`` — oversubscribed process pools degrade *both*
    layers' latency, and job-level parallelism is the better-amortized
    of the two (one pickle per job vs. one snapshot per plan point).
    Results are unaffected either way: the sharded path is
    bit-identical to sequential execution.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        shard_workers: int = 0,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = inline sequential)")
        if shard_workers < 0:
            raise ValueError("shard_workers must be >= 0 (0 = sequential recursion)")
        cores = os.cpu_count() or 1
        budget = max(1, self.__class__._core_budget(workers, cores))
        if shard_workers > budget and shard_workers > 1:
            clamped = budget if budget >= 2 else 0
            warnings.warn(
                f"workers={workers} x shard_workers={shard_workers} oversubscribes"
                f" {cores} cores; clamping shard_workers to {clamped}",
                RuntimeWarning,
                stacklevel=2,
            )
            shard_workers = clamped
        self.workers = workers
        self.cache = cache
        self.shard_workers = shard_workers

    @staticmethod
    def _core_budget(workers: int, cores: int) -> int:
        """Cores left per job for recursion sharding."""
        return cores // max(1, workers)

    # -- public API ------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Job],
        on_result: Callable[[JobOutcome], None] | None = None,
    ) -> list[JobOutcome]:
        """Run ``jobs`` to completion; outcomes in submission order.

        ``on_result`` is invoked once per job, also in submission order,
        as soon as that job *and all earlier ones* finished — the
        streaming hook ``repro serve`` uses to emit verdict lines.
        """
        return asyncio.run(self.run_async(jobs, on_result=on_result))

    async def run_async(
        self,
        jobs: Sequence[Job],
        on_result: Callable[[JobOutcome], None] | None = None,
    ) -> list[JobOutcome]:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        inflight: dict = {}
        submitted = time.perf_counter()
        futures: list[asyncio.Future] = []
        for job in jobs:
            future = loop.create_future()
            futures.append(future)
            queue.put_nowait((job, future))
        n_consumers = max(1, self.workers)
        pool = ProcessPoolExecutor(max_workers=self.workers) if self.workers else None
        for _ in range(n_consumers):
            queue.put_nowait(None)  # one shutdown sentinel per consumer
        consumers = [
            asyncio.ensure_future(
                self._consume(queue, pool, inflight, loop, submitted)
            )
            for _ in range(n_consumers)
        ]
        try:
            outcomes: list[JobOutcome] = []
            for future in futures:
                outcome = await future
                if on_result is not None:
                    on_result(outcome)
                outcomes.append(outcome)
            return outcomes
        finally:
            for consumer in consumers:
                consumer.cancel()
            await asyncio.gather(*consumers, return_exceptions=True)
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    # -- internals -------------------------------------------------------

    async def _consume(self, queue, pool, inflight, loop, submitted) -> None:
        while True:
            item = await queue.get()
            if item is None:
                return
            job, future = item
            try:
                outcome = await self._process(job, pool, inflight, loop, submitted)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # infrastructure failure, not job failure
                if not future.done():
                    future.set_exception(exc)
                continue
            if not future.done():
                future.set_result(outcome)

    async def _process(self, job: Job, pool, inflight, loop, submitted) -> JobOutcome:
        cache = self.cache
        if cache is None:
            record = await self._execute(job, pool, loop)
            return self._outcome(job, "off", submitted, record)

        form = canonical_form(job.graph)
        exact = exact_fingerprint(job.graph)
        key = (form.hash, job.kind, config_key(job.config))
        hit = cache.lookup(key, exact, form, job.graph)
        if hit is not None:
            return self._outcome(job, hit.tier, submitted, hit.verdict)

        flight_key = (key, exact)
        waiter = inflight.get(flight_key)
        if waiter is not None:
            # Single-flight: an identical job is already computing;
            # share its verdict instead of burning a worker on it.
            record = await asyncio.shield(waiter)
            cache.stats.hits_coalesced += 1
            return self._outcome(job, "coalesced", submitted, record)

        waiter = loop.create_future()
        inflight[flight_key] = waiter
        cache.stats.misses += 1
        try:
            record = await self._execute(job, pool, loop)
        except BaseException as exc:
            if not waiter.done():
                waiter.set_exception(exc)
            inflight.pop(flight_key, None)
            raise
        inflight.pop(flight_key, None)
        waiter.set_result(record)
        if record["outcome"] in ("ok", "non-planar"):
            # Churn verdicts are exact-tier only: the op plan picks
            # endpoints by repr order, so it is not invariant under the
            # relabelings a canonical remap hit would equate — and the
            # rotation describes the churned edge set, not the
            # submitted one.
            canonical_rotation = (
                None
                if job.kind == "churn"
                else self._canonical_rotation(job.graph, form, record)
            )
            cache.store(key, exact, record, canonical_rotation)
        return self._outcome(job, "miss", submitted, record)

    async def _execute(self, job: Job, pool, loop) -> dict:
        payload = job.payload()
        # Apply the driver-level sharding default *after* the cache key
        # was computed from job.config: sharding never changes results,
        # so jobs served at different --shard-workers settings must keep
        # sharing cache entries.  A job's own explicit value wins.
        if self.shard_workers and "shard_workers" not in payload["config"]:
            payload["config"]["shard_workers"] = self.shard_workers
        try:
            if pool is None:
                # Inline sequential reference path: same worker function,
                # same serialized payload, no process hop.
                return execute_job(payload)
            return await loop.run_in_executor(pool, execute_job, payload)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # The worker folds job failures into records, so reaching
            # here means pool infrastructure died (broken process,
            # unpicklable result).  Surface it as a typed error outcome.
            return _normalize({
                "outcome": "error",
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "where": "dispatch",
                },
            })

    @staticmethod
    def _outcome(job: Job, tier: str, submitted: float, record: dict) -> JobOutcome:
        return JobOutcome(
            index=job.index,
            id=job.id,
            kind=job.kind,
            cache=tier,
            wall_s=time.perf_counter() - submitted,
            record=record,
        )

    @staticmethod
    def _canonical_rotation(
        graph: Graph, form: CanonicalForm, record: dict
    ) -> dict[int, list[int]] | None:
        """Re-key the verdict's rotation by canonical rank (for remap
        hits); ``None`` when refinement wasn't discrete or there is no
        rotation (non-planar verdicts)."""
        rotation = record.get("rotation")
        if rotation is None or form.labels is None:
            return None
        by_repr = {repr(v): v for v in graph.nodes()}
        try:
            return {
                form.labels[by_repr[rv]]: [form.labels[by_repr[ru]] for ru in order]
                for rv, order in rotation.items()
            }
        except KeyError:
            return None  # repr round-trip mismatch; cache exact-only

    # -- aggregation -----------------------------------------------------

    def aggregate(self, outcomes: Sequence[JobOutcome], wall_s: float) -> dict:
        """The batch report: outcome counts, cache counters, throughput,
        and latency percentiles (JSON-ready)."""
        counts = {name: 0 for name in OUTCOME_EXIT}
        for outcome in outcomes:
            counts[outcome.outcome] = counts.get(outcome.outcome, 0) + 1
        latencies = sorted(outcome.wall_s for outcome in outcomes)
        stats = self.cache.stats if self.cache is not None else None
        return {
            "type": "batch-report",
            "jobs": len(outcomes),
            "workers": self.workers,
            "outcomes": counts,
            "cache": stats.to_dict() if stats is not None else None,
            "computed": stats.misses if stats is not None else len(outcomes),
            "wall_s": round(wall_s, 6),
            "jobs_per_s": round(len(outcomes) / wall_s, 3) if wall_s > 0 else None,
            "latency_s": {
                "p50": round(_percentile(latencies, 0.50), 6),
                "p99": round(_percentile(latencies, 0.99), 6),
                "max": round(latencies[-1], 6) if latencies else 0.0,
            },
            "exit_code": self.exit_code(outcomes),
        }

    @staticmethod
    def exit_code(outcomes: Sequence[JobOutcome]) -> int:
        """Batch partial-failure semantics: the worst per-job code wins
        (0 ok < 1 non-planar < 3 error < 4 degraded, numerically)."""
        return max((outcome.exit_code for outcome in outcomes), default=0)
