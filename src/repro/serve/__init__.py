"""repro.serve — embedding-as-a-service: batch driver, workers, cache.

The library's entry points (:func:`~repro.distributed_planar_embedding`,
certification, :func:`~repro.core.self_healing_embedding`) compute one
result for one caller.  This package serves *streams* of such jobs at
production traffic:

* :mod:`.canon`  — a label-invariant whole-graph canonical hash
  (Weisfeiler–Leman refinement over process-stable blake2b digests),
  lifting the E16 canonicalized-region memo to whole-job scope;
* :mod:`.cache`  — a bounded LRU + optional persistent JSONL result
  store keyed by ``(canonical_hash, job_kind, config)``, with
  bit-identical exact hits and verified isomorphism-remap hits;
* :mod:`.jobs`   — the serialized job model (JSONL in, JSONL verdicts
  out; flat picklable payloads across the process boundary);
* :mod:`.driver` — the async batch driver: a bounded asyncio admission
  queue feeding a self-healing ``ProcessPoolExecutor`` of stateless
  workers, single-flight deduplication of identical in-flight jobs,
  typed per-job outcomes (ok / non-planar / degraded / error / timeout
  / quarantined / shed), deterministic result order;
* :mod:`.resilience` — deadlines, seeded retry backoff, pool
  supervision/respawn, quarantine, load shedding, and the seeded
  process-chaos harness (:class:`.resilience.ChaosPool`);
* :mod:`.cli`    — the ``repro serve`` / ``repro batch`` /
  ``repro cache-compact`` subcommands.

Quickstart::

    from repro.serve import Job, ResultCache, ServiceDriver, load_jobs

    jobs = load_jobs("jobs.jsonl")          # or build Job objects directly
    driver = ServiceDriver(workers=4, cache=ResultCache(capacity=512))
    for outcome in driver.run(jobs):        # deterministic submission order
        print(outcome.id, outcome.outcome, outcome.cache)
"""

from .cache import CacheStats, ResultCache, compact_store
from .canon import CanonicalForm, canonical_form, canonical_hash, exact_fingerprint
from .driver import OUTCOME_EXIT, JobOutcome, ServiceDriver, execute_job
from .jobs import JOB_KINDS, Job, JobSpecError, config_key, load_jobs, parse_job
from .resilience import (
    ChaosKilledError,
    ChaosPool,
    PoolSupervisor,
    ResiliencePolicy,
    ResilienceStats,
    retry_delay,
    torn_append,
)

__all__ = [
    "CanonicalForm",
    "canonical_form",
    "canonical_hash",
    "exact_fingerprint",
    "ResultCache",
    "CacheStats",
    "compact_store",
    "Job",
    "JobSpecError",
    "JOB_KINDS",
    "parse_job",
    "load_jobs",
    "config_key",
    "ServiceDriver",
    "JobOutcome",
    "execute_job",
    "OUTCOME_EXIT",
    "ChaosKilledError",
    "ChaosPool",
    "PoolSupervisor",
    "ResiliencePolicy",
    "ResilienceStats",
    "retry_delay",
    "torn_append",
]
