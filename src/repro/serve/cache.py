"""The canonical-graph result cache behind the embedding service.

Under heavy traffic the common case is the *same topology over and over*
(the same deployment re-verified, the same mesh re-certified after a
config push), so the service answers repeats from cache instead of
recomputing.  Entries are keyed by ``(canonical_hash, job_kind,
config_key)`` — the label-invariant WL hash from :mod:`.canon` plus the
computation kind and its normalized config — with two hit tiers beneath
one key:

**exact** — the submission's insertion-order fingerprint matches a
    stored entry.  The stored verdict is returned verbatim and is
    **bit-identical** to what a cold run would produce (the whole
    pipeline is deterministic given the adjacency structure; the E16/E15
    differential suites are the standing proof).

**canonical** — no exact match, but the query's WL refinement is
    *discrete* (all vertex colors distinct) and a stored entry kept its
    rotation in canonical ranks.  The color-matching bijection is then a
    genuine isomorphism, so the cached rotation is remapped onto the
    query's vertex labels — and defensively re-verified (genus 0 on the
    query graph) before being served; a failed check falls back to a
    miss rather than ever serving a wrong answer.  The ledger fields of
    a canonical hit describe the original isomorphic run.

Only deterministic, complete outcomes (``ok``, ``non-planar``) are
cached; degraded and errored outcomes always recompute.

The in-memory store is a bounded LRU.  With ``path`` set, every store
also appends one JSONL line, and a fresh cache warm-starts by replaying
the file — the digests are process-stable (:mod:`.canon` uses blake2b,
never Python's randomized ``hash()``), so a persisted cache is valid
across processes, restarts, and machines.  Unreadable or
version-mismatched lines are counted and skipped, never fatal: a
corrupt cache degrades to cold, it does not take the service down.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field

from ..planar.graph import Graph, NodeId
from ..planar.rotation import RotationError, RotationSystem
from .canon import CanonicalForm

__all__ = ["CacheEntry", "CacheStats", "ResultCache", "CACHE_SCHEMA_VERSION"]

CACHE_SCHEMA_VERSION = 1

#: Isomorphic-but-differently-ordered submissions of one topology under
#: one key; beyond this the oldest entry is dropped (the canonical tier
#: usually answers them all anyway).
_MAX_ENTRIES_PER_KEY = 8

CacheKey = tuple[str, str, str]  # (canonical_hash, job_kind, config_key)


@dataclass
class CacheEntry:
    exact: str  # insertion-order fingerprint of the executed graph
    verdict: dict  # normalized JSON verdict, returned verbatim on exact hits
    canonical_rotation: dict[int, list[int]] | None = None  # rank -> neighbor ranks


@dataclass
class CacheStats:
    """Hit/miss counters surfaced in batch reports and benches."""

    hits_exact: int = 0
    hits_canonical: int = 0
    hits_coalesced: int = 0  # duplicate in-flight jobs folded by the driver
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    rejected_remaps: int = 0  # canonical hits that failed re-verification
    persisted_loads: int = 0
    persisted_skipped: int = 0

    @property
    def hits(self) -> int:
        return self.hits_exact + self.hits_canonical + self.hits_coalesced

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "hits_exact": self.hits_exact,
            "hits_canonical": self.hits_canonical,
            "hits_coalesced": self.hits_coalesced,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "rejected_remaps": self.rejected_remaps,
            "persisted_loads": self.persisted_loads,
            "persisted_skipped": self.persisted_skipped,
        }


@dataclass
class CacheHit:
    verdict: dict
    tier: str  # "exact" | "canonical"


def _rotation_repr(rotation: dict[NodeId, tuple]) -> dict[str, list[str]]:
    """The verdict wire form of a rotation: repr-keyed, JSON-ready."""
    return {repr(v): [repr(u) for u in order] for v, order in rotation.items()}


@dataclass
class ResultCache:
    """Bounded LRU + optional persistent JSONL store of job verdicts."""

    capacity: int = 512
    path: str | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._store: OrderedDict[CacheKey, list[CacheEntry]] = OrderedDict()
        if self.path is not None:
            self._replay(self.path)

    def __len__(self) -> int:
        return len(self._store)

    # -- lookup ----------------------------------------------------------

    def lookup(
        self, key: CacheKey, exact: str, form: CanonicalForm, graph: Graph
    ) -> CacheHit | None:
        """Return a hit for ``graph`` under ``key``, or ``None``.

        Misses are *not* counted here: the driver increments
        ``stats.misses`` only when it actually dispatches a computation,
        so ``misses`` stays equal to the number of cold runs even when
        duplicate in-flight jobs are coalesced.
        """
        entries = self._store.get(key)
        if entries is not None:
            self._store.move_to_end(key)
            for entry in entries:
                if entry.exact == exact:
                    self.stats.hits_exact += 1
                    return CacheHit(verdict=entry.verdict, tier="exact")
            if form.discrete:
                for entry in entries:
                    if entry.canonical_rotation is None:
                        continue
                    verdict = self._remap(entry, form, graph)
                    if verdict is not None:
                        self.stats.hits_canonical += 1
                        return CacheHit(verdict=verdict, tier="canonical")
        return None

    def _remap(
        self, entry: CacheEntry, form: CanonicalForm, graph: Graph
    ) -> dict | None:
        """Materialize a stored canonical rotation onto ``graph``'s labels.

        Discreteness on both sides plus an equal graph hash makes the
        rank-matching bijection an isomorphism (see :mod:`.canon`), but
        the result is still re-verified — genus 0 on the query graph —
        so a WL edge case can cost a recompute, never a wrong answer.
        """
        assert form.labels is not None
        inverse = {rank: v for v, rank in form.labels.items()}
        try:
            rotation = {
                inverse[int(rank)]: tuple(inverse[int(r)] for r in order)
                for rank, order in entry.canonical_rotation.items()
            }
        except KeyError:
            self.stats.rejected_remaps += 1
            return None
        try:
            system = RotationSystem(graph, rotation)
            if system.genus() != 0:
                self.stats.rejected_remaps += 1
                return None
        except RotationError:
            self.stats.rejected_remaps += 1
            return None
        verdict = json.loads(json.dumps(entry.verdict, sort_keys=True))
        verdict["rotation"] = _rotation_repr(rotation)
        verdict["remapped"] = True
        return verdict

    # -- store -----------------------------------------------------------

    def store(
        self,
        key: CacheKey,
        exact: str,
        verdict: dict,
        canonical_rotation: dict[int, list[int]] | None = None,
        _persist: bool = True,
    ) -> None:
        entries = self._store.get(key)
        if entries is None:
            entries = self._store[key] = []
        else:
            self._store.move_to_end(key)
            if any(e.exact == exact for e in entries):
                return  # already present (e.g. two racing cold runs)
        entries.append(
            CacheEntry(exact=exact, verdict=verdict, canonical_rotation=canonical_rotation)
        )
        if len(entries) > _MAX_ENTRIES_PER_KEY:
            entries.pop(0)
        self.stats.stores += 1
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.stats.evictions += 1
        if _persist and self.path is not None:
            self._append(key, entries[-1])

    # -- persistence -----------------------------------------------------

    def _append(self, key: CacheKey, entry: CacheEntry) -> None:
        line = json.dumps(
            {
                "v": CACHE_SCHEMA_VERSION,
                "key": list(key),
                "exact": entry.exact,
                "verdict": entry.verdict,
                "canon_rot": entry.canonical_rotation,
            },
            sort_keys=True,
        )
        with open(self.path, "a") as f:
            f.write(line + "\n")

    def _replay(self, path: str) -> None:
        try:
            f = open(path)
        except OSError:
            return  # no warm store yet; it will be created on first append
        with f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                    if obj.get("v") != CACHE_SCHEMA_VERSION:
                        raise ValueError("schema version mismatch")
                    key = tuple(obj["key"])
                    if len(key) != 3:
                        raise ValueError("malformed key")
                    exact = obj["exact"]
                    verdict = obj["verdict"]
                    canon_rot = obj.get("canon_rot")
                    if canon_rot is not None:
                        canon_rot = {
                            int(rank): [int(r) for r in order]
                            for rank, order in canon_rot.items()
                        }
                except (ValueError, KeyError, TypeError, AttributeError):
                    self.stats.persisted_skipped += 1
                    continue
                self.store(key, exact, verdict, canon_rot, _persist=False)
                self.stats.persisted_loads += 1
        # Replay counted its inserts as stores; those were not fresh work.
        self.stats.stores -= self.stats.persisted_loads
