"""The canonical-graph result cache behind the embedding service.

Under heavy traffic the common case is the *same topology over and over*
(the same deployment re-verified, the same mesh re-certified after a
config push), so the service answers repeats from cache instead of
recomputing.  Entries are keyed by ``(canonical_hash, job_kind,
config_key)`` — the label-invariant WL hash from :mod:`.canon` plus the
computation kind and its normalized config — with two hit tiers beneath
one key:

**exact** — the submission's insertion-order fingerprint matches a
    stored entry.  The stored verdict is returned verbatim and is
    **bit-identical** to what a cold run would produce (the whole
    pipeline is deterministic given the adjacency structure; the E16/E15
    differential suites are the standing proof).

**canonical** — no exact match, but the query's WL refinement is
    *discrete* (all vertex colors distinct) and a stored entry kept its
    rotation in canonical ranks.  The color-matching bijection is then a
    genuine isomorphism, so the cached rotation is remapped onto the
    query's vertex labels — and defensively re-verified (genus 0 on the
    query graph) before being served; a failed check falls back to a
    miss rather than ever serving a wrong answer.  The ledger fields of
    a canonical hit describe the original isomorphic run.

Only deterministic, complete outcomes (``ok``, ``non-planar``) are
cached; degraded and errored outcomes always recompute.

The in-memory store is a bounded LRU.  With ``path`` set, every store
also appends one JSONL line, and a fresh cache warm-starts by replaying
the file — the digests are process-stable (:mod:`.canon` uses blake2b,
never Python's randomized ``hash()``), so a persisted cache is valid
across processes, restarts, and machines.

The persistent store is **crash-consistent**: every v2 record carries a
CRC-32 over its canonical body, appends are flushed and ``fsync``'d
(one record = one durable unit), and replay repairs the file — a torn
tail (the partial line a crash mid-append leaves, plus any trailing
garbage after the last valid record) is truncated off, while corrupt
lines *followed by* valid ones (a concurrent writer's damage, a flipped
bit mid-file) are counted and skipped, never fatal.  Legacy v1 lines
(no CRC) still load.  A corrupt cache degrades to cold, it does not
take the service down.  ``repro cache-compact`` (:func:`compact_store`)
rewrites a grown store to its live entries atomically.
"""

from __future__ import annotations

import json
import os
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

from ..planar.graph import Graph, NodeId
from ..planar.rotation import RotationError, RotationSystem
from .canon import CanonicalForm

__all__ = [
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "CACHE_SCHEMA_VERSION",
    "compact_store",
]

CACHE_SCHEMA_VERSION = 2

#: Isomorphic-but-differently-ordered submissions of one topology under
#: one key; beyond this the oldest entry is dropped (the canonical tier
#: usually answers them all anyway).
_MAX_ENTRIES_PER_KEY = 8

CacheKey = tuple[str, str, str]  # (canonical_hash, job_kind, config_key)


@dataclass
class CacheEntry:
    exact: str  # insertion-order fingerprint of the executed graph
    verdict: dict  # normalized JSON verdict, returned verbatim on exact hits
    canonical_rotation: dict[int, list[int]] | None = None  # rank -> neighbor ranks


@dataclass
class CacheStats:
    """Hit/miss counters surfaced in batch reports and benches."""

    hits_exact: int = 0
    hits_canonical: int = 0
    hits_coalesced: int = 0  # duplicate in-flight jobs folded by the driver
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    rejected_remaps: int = 0  # canonical hits that failed re-verification
    persisted_loads: int = 0
    persisted_skipped: int = 0  # mid-file corrupt lines (skipped, kept on disk)
    torn_truncated: int = 0  # torn-tail records truncated off on replay

    @property
    def hits(self) -> int:
        return self.hits_exact + self.hits_canonical + self.hits_coalesced

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "hits_exact": self.hits_exact,
            "hits_canonical": self.hits_canonical,
            "hits_coalesced": self.hits_coalesced,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "rejected_remaps": self.rejected_remaps,
            "persisted_loads": self.persisted_loads,
            "persisted_skipped": self.persisted_skipped,
            "torn_truncated": self.torn_truncated,
        }


@dataclass
class CacheHit:
    verdict: dict
    tier: str  # "exact" | "canonical"


def _rotation_repr(rotation: dict[NodeId, tuple]) -> dict[str, list[str]]:
    """The verdict wire form of a rotation: repr-keyed, JSON-ready."""
    return {repr(v): [repr(u) for u in order] for v, order in rotation.items()}


@dataclass
class ResultCache:
    """Bounded LRU + optional persistent JSONL store of job verdicts."""

    capacity: int = 512
    path: str | None = None
    fsync: bool = True  # fsync every append (one record = one durable unit)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._store: OrderedDict[CacheKey, list[CacheEntry]] = OrderedDict()
        if self.path is not None:
            self._replay(self.path)

    def __len__(self) -> int:
        return len(self._store)

    # -- lookup ----------------------------------------------------------

    def lookup(
        self, key: CacheKey, exact: str, form: CanonicalForm, graph: Graph
    ) -> CacheHit | None:
        """Return a hit for ``graph`` under ``key``, or ``None``.

        Misses are *not* counted here: the driver increments
        ``stats.misses`` only when it actually dispatches a computation,
        so ``misses`` stays equal to the number of cold runs even when
        duplicate in-flight jobs are coalesced.
        """
        entries = self._store.get(key)
        if entries is not None:
            self._store.move_to_end(key)
            for entry in entries:
                if entry.exact == exact:
                    self.stats.hits_exact += 1
                    return CacheHit(verdict=entry.verdict, tier="exact")
            if form.discrete:
                for entry in entries:
                    if entry.canonical_rotation is None:
                        continue
                    verdict = self._remap(entry, form, graph)
                    if verdict is not None:
                        self.stats.hits_canonical += 1
                        return CacheHit(verdict=verdict, tier="canonical")
        return None

    def _remap(
        self, entry: CacheEntry, form: CanonicalForm, graph: Graph
    ) -> dict | None:
        """Materialize a stored canonical rotation onto ``graph``'s labels.

        Discreteness on both sides plus an equal graph hash makes the
        rank-matching bijection an isomorphism (see :mod:`.canon`), but
        the result is still re-verified — genus 0 on the query graph —
        so a WL edge case can cost a recompute, never a wrong answer.
        """
        assert form.labels is not None
        inverse = {rank: v for v, rank in form.labels.items()}
        try:
            rotation = {
                inverse[int(rank)]: tuple(inverse[int(r)] for r in order)
                for rank, order in entry.canonical_rotation.items()
            }
        except KeyError:
            self.stats.rejected_remaps += 1
            return None
        try:
            system = RotationSystem(graph, rotation)
            if system.genus() != 0:
                self.stats.rejected_remaps += 1
                return None
        except RotationError:
            self.stats.rejected_remaps += 1
            return None
        verdict = json.loads(json.dumps(entry.verdict, sort_keys=True))
        verdict["rotation"] = _rotation_repr(rotation)
        verdict["remapped"] = True
        return verdict

    # -- store -----------------------------------------------------------

    def store(
        self,
        key: CacheKey,
        exact: str,
        verdict: dict,
        canonical_rotation: dict[int, list[int]] | None = None,
        _persist: bool = True,
    ) -> None:
        entries = self._store.get(key)
        if entries is None:
            entries = self._store[key] = []
        else:
            self._store.move_to_end(key)
            if any(e.exact == exact for e in entries):
                return  # already present (e.g. two racing cold runs)
        entries.append(
            CacheEntry(exact=exact, verdict=verdict, canonical_rotation=canonical_rotation)
        )
        if len(entries) > _MAX_ENTRIES_PER_KEY:
            entries.pop(0)
        self.stats.stores += 1
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.stats.evictions += 1
        if _persist and self.path is not None:
            self._append(key, entries[-1])

    # -- persistence -----------------------------------------------------

    def _append(self, key: CacheKey, entry: CacheEntry) -> None:
        data = _record_line(key, entry).encode("utf-8")
        with open(self.path, "ab") as f:
            f.write(data)
            if self.fsync:
                f.flush()
                os.fsync(f.fileno())

    def _replay(self, path: str) -> None:
        try:
            with open(path, "rb") as f:
                raw = f.read()
        except OSError:
            return  # no warm store yet; it will be created on first append
        records, skipped, torn, good_end = _scan_store(raw)
        for key, exact, verdict, canon_rot in records:
            self.store(key, exact, verdict, canon_rot, _persist=False)
            self.stats.persisted_loads += 1
        self.stats.persisted_skipped += skipped
        self.stats.torn_truncated += torn
        if good_end < len(raw):
            # Repair the store in place: drop the torn tail a crash
            # mid-append left, so the next append starts on a record
            # boundary instead of welding onto the fragment.
            try:
                with open(path, "r+b") as f:
                    f.truncate(good_end)
            except OSError:
                pass  # read-only store: serve from memory, skip the repair
        # Replay counted its inserts as stores; those were not fresh work.
        self.stats.stores -= self.stats.persisted_loads


def _record_line(key: CacheKey, entry: CacheEntry) -> str:
    """One durable v2 record: the canonical body JSON plus a CRC-32 of
    that exact serialization, newline-terminated."""
    body = {
        "v": CACHE_SCHEMA_VERSION,
        "key": list(key),
        "exact": entry.exact,
        "verdict": entry.verdict,
        "canon_rot": entry.canonical_rotation,
    }
    crc = zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))
    body["crc"] = crc
    return json.dumps(body, sort_keys=True) + "\n"


def _parse_record(line: str) -> tuple:
    """Decode one store line into ``(key, exact, verdict, canon_rot)``.

    Raises ``ValueError``/``KeyError``/``TypeError`` on any damage: bad
    JSON, wrong schema version, malformed key — or, for v2 records, a
    CRC that does not match the canonical body serialization (a flipped
    bit anywhere in the record changes one side or the other).  Legacy
    v1 lines carry no CRC and are accepted on structure alone.
    """
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("record is not an object")
    version = obj.get("v")
    if version == 2:
        crc = obj.pop("crc", None)
        if crc != zlib.crc32(json.dumps(obj, sort_keys=True).encode("utf-8")):
            raise ValueError("CRC mismatch")
    elif version != 1:
        raise ValueError("schema version mismatch")
    key = tuple(obj["key"])
    if len(key) != 3:
        raise ValueError("malformed key")
    exact = obj["exact"]
    verdict = obj["verdict"]
    canon_rot = obj.get("canon_rot")
    if canon_rot is not None:
        canon_rot = {
            int(rank): [int(r) for r in order] for rank, order in canon_rot.items()
        }
    return key, exact, verdict, canon_rot


def _scan_store(raw: bytes) -> tuple[list, int, int, int]:
    """Walk a persisted store byte-for-byte.

    Returns ``(records, skipped, torn, good_end)`` where ``records`` are
    the decoded valid records in file order, ``good_end`` is the byte
    offset just past the last valid record, ``skipped`` counts corrupt
    lines *before* that offset (mid-file damage: skip, keep on disk —
    a concurrent writer may still own those bytes), and ``torn`` counts
    everything after it (trailing corrupt or unterminated lines: the
    torn tail a crash mid-append leaves, safe to truncate).
    """
    records: list = []
    bad_offsets: list[int] = []  # offsets of invalid lines, in file order
    good_end = 0
    offset = 0
    for chunk in raw.split(b"\n"):
        end = offset + len(chunk) + 1  # +1 for the newline split off
        terminated = end <= len(raw)
        if chunk.strip():
            parsed = None
            if terminated:  # an unterminated final line is torn by definition
                try:
                    parsed = _parse_record(chunk.decode("utf-8"))
                except (ValueError, KeyError, TypeError, AttributeError):
                    parsed = None
            if parsed is not None:
                records.append(parsed)
                good_end = end
            else:
                bad_offsets.append(offset)
        elif terminated:
            good_end = end  # blank lines are harmless padding, keep them
        offset = end
    skipped = sum(1 for o in bad_offsets if o < good_end)
    torn = len(bad_offsets) - skipped
    return records, skipped, torn, good_end


def compact_store(
    path: str, capacity: int = 512, output: str | None = None
) -> dict:
    """Rewrite a persisted store to its live entries, atomically.

    An append-only store grows monotonically — superseded duplicates,
    skipped corruption, and entries beyond the LRU capacity all stay on
    disk.  Compaction replays the file through a fresh
    :class:`ResultCache` (same capacity semantics as serving, so what
    survives compaction is exactly what a warm start would load), writes
    the surviving entries as fsync'd v2 records to a temp file, and
    ``os.replace``\\ s it over ``output`` (default: ``path`` itself) —
    a crash mid-compact leaves the original store untouched.

    Returns a JSON-ready summary of what was kept and dropped.
    """
    size_before = os.stat(path).st_size  # missing input is an error
    cache = ResultCache(capacity=capacity, path=path, fsync=False)
    tmp = (output or path) + ".compact.tmp"
    entries = 0
    with open(tmp, "wb") as f:
        for key, bucket in cache._store.items():
            for entry in bucket:
                f.write(_record_line(key, entry).encode("utf-8"))
                entries += 1
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, output or path)
    return {
        "type": "cache-compact",
        "path": path,
        "output": output or path,
        "keys": len(cache),
        "entries": entries,
        "loaded": cache.stats.persisted_loads,
        "skipped": cache.stats.persisted_skipped,
        "torn_truncated": cache.stats.torn_truncated,
        "bytes_before": size_before,
        "bytes_after": os.stat(output or path).st_size,
    }
