"""The ``repro serve``, ``repro batch``, and ``repro cache-compact`` CLIs.

``serve`` reads JSONL jobs from a file or stdin and **streams** one
JSONL verdict line per job to stdout, in submission order, as soon as
each job (and all earlier ones) resolves — the long-running-consumer
mode.  ``batch`` runs a job file to completion and prints one aggregate
report — outcome counts, cache hit/miss counters, resilience counters,
throughput, latency percentiles — human-readable by default,
machine-readable with ``--json``; ``--verdicts FILE`` additionally
writes the per-job JSONL.  ``cache-compact`` rewrites a persistent
cache store to its live entries atomically.

Both serving commands take the resilience knobs (``--deadline``,
``--retries``, ``--queue-limit``, ``--resilience-seed``) and the chaos
harness (``--chaos SPEC``, ``--flight FILE``) — see
:mod:`repro.serve.resilience`.

Both exit with the batch partial-failure convention: the **worst**
per-job exit code (0 ok, 1 non-planar, 3 error, 4 degraded, 5 timeout,
6 quarantined, 7 shed; 2 = usage) — see the consolidated exit-code
table in README.md.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys

from .cache import ResultCache, compact_store
from .driver import JobOutcome, ServiceDriver
from .jobs import JobSpecError, load_jobs
from .resilience import ChaosPool, ResiliencePolicy

__all__ = ["serve_cli", "batch_cli", "compact_cli"]


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="pool worker processes (default 1; 0 = inline "
                             "sequential, the reference driver)")
    parser.add_argument("--shard-workers", type=int, default=0, metavar="K",
                        dest="shard_workers",
                        help="recursion worker processes per job (default 0 = "
                             "sequential; results are bit-identical either "
                             "way; clamped with a warning when workers x K "
                             "oversubscribes the machine)")
    parser.add_argument("--no-cache", action="store_true", dest="no_cache",
                        help="disable the result cache and single-flight "
                             "coalescing: every job computes")
    parser.add_argument("--cache-size", type=int, default=512, metavar="K",
                        dest="cache_size",
                        help="max cached topologies in memory (LRU, default 512)")
    parser.add_argument("--cache-file", metavar="FILE", dest="cache_file",
                        help="persistent JSONL cache store: warm-started on "
                             "launch (torn tail repaired), fsync-appended on "
                             "every cold result")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        dest="deadline",
                        help="per-attempt wall-clock budget in seconds "
                             "(default none; pool mode only; exhausting every "
                             "attempt yields the 'timeout' outcome, exit 5)")
    parser.add_argument("--retries", type=int, default=2, metavar="K",
                        dest="retries",
                        help="max re-attempts after a worker death or "
                             "deadline (default 2; seeded exponential "
                             "backoff; repeated pool kills by one job yield "
                             "'quarantined', exit 6)")
    parser.add_argument("--queue-limit", type=int, default=0, metavar="N",
                        dest="queue_limit",
                        help="bounded admission queue: jobs beyond the bound "
                             "get the 'shed' outcome, exit 7 (default 0 = "
                             "unbounded, never shed)")
    parser.add_argument("--resilience-seed", type=int, default=0, metavar="N",
                        dest="resilience_seed",
                        help="seed for the deterministic retry-backoff "
                             "jitter (default 0)")
    parser.add_argument("--chaos", metavar="SPEC", dest="chaos",
                        help="seeded process-chaos plan applied inside pool "
                             "workers, e.g. 'kill=0.2,latency=0.3:0.05,"
                             "seed=7' (kill = SIGKILL rate per attempt; "
                             "latency = rate[:seconds] of injected sleep)")
    parser.add_argument("--flight", metavar="FILE", dest="flight",
                        help="record service-level fault events (retries, "
                             "timeouts, pool deaths, quarantine, shed) to a "
                             "flight-recorder JSONL dump")


def _build(args: argparse.Namespace, parser: argparse.ArgumentParser) -> ServiceDriver:
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.shard_workers < 0:
        parser.error("--shard-workers must be >= 0")
    if args.cache_size < 1:
        parser.error("--cache-size must be >= 1")
    if args.no_cache and args.cache_file:
        parser.error("--no-cache and --cache-file are contradictory")
    if args.deadline is not None and args.deadline <= 0:
        parser.error("--deadline must be > 0 seconds")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.queue_limit < 0:
        parser.error("--queue-limit must be >= 0 (0 = unbounded)")
    cache = None
    if not args.no_cache:
        cache = ResultCache(capacity=args.cache_size, path=args.cache_file)
    chaos = None
    if args.chaos is not None:
        try:
            chaos = ChaosPool.parse(args.chaos, seed=args.resilience_seed)
        except ValueError as exc:
            parser.error(f"bad --chaos spec: {exc}")
    policy = ResiliencePolicy(
        seed=args.resilience_seed,
        deadline_s=args.deadline,
        max_retries=args.retries,
        queue_limit=args.queue_limit,
    )
    return ServiceDriver(
        workers=args.workers, cache=cache, shard_workers=args.shard_workers,
        resilience=policy, chaos=chaos,
    )


def _flight_scope(args: argparse.Namespace):
    """The flight-recorder override for one CLI run (no-op without
    ``--flight``); the dump is written when the block exits."""
    import contextlib

    from ..obs.flightrec import FlightRecorder, flight_override

    if getattr(args, "flight", None) is None:
        return contextlib.nullcontext(None)

    @contextlib.contextmanager
    def scope():
        recorder = FlightRecorder(capacity=256)
        with flight_override(recorder):
            try:
                yield recorder
            finally:
                recorder.dump(args.flight)

    return scope()


def _load(path: str, parser: argparse.ArgumentParser):
    try:
        if path == "-":
            return load_jobs(sys.stdin)
        return load_jobs(path)
    except JobSpecError as exc:
        parser.error(str(exc))
    except OSError as exc:
        parser.error(f"cannot read job file {path!r}: {exc}")


def _cache_summary(driver: ServiceDriver) -> str:
    if driver.cache is None:
        return "cache: disabled"
    stats = driver.cache.stats
    return (
        f"cache: {stats.hits} hits"
        f" ({stats.hits_exact} exact, {stats.hits_canonical} canonical,"
        f" {stats.hits_coalesced} coalesced), {stats.misses} misses"
        f" (= computations), {stats.evictions} evictions"
    )


def serve_cli(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Stream embedding-service verdicts for a JSONL job stream",
    )
    parser.add_argument("jobs", nargs="?", default="-",
                        help="JSONL job file (default '-' = stdin)")
    _add_common_options(parser)
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stderr summary")
    args = parser.parse_args(argv)
    driver = _build(args, parser)
    jobs = _load(args.jobs, parser)
    say = (lambda *a, **k: None) if args.quiet else functools.partial(print, file=sys.stderr)
    say(f"serve: {len(jobs)} jobs, {args.workers} workers"
        + (", cache disabled" if driver.cache is None else ""))

    import time

    def emit(outcome: JobOutcome) -> None:
        print(json.dumps(outcome.to_json_obj(), sort_keys=True), flush=True)

    t0 = time.perf_counter()
    with _flight_scope(args):
        outcomes = driver.run(jobs, on_result=emit)
    report = driver.aggregate(outcomes, time.perf_counter() - t0)
    say(f"serve: {report['jobs']} verdicts in {report['wall_s']}s"
        f" ({report['jobs_per_s']} jobs/s),"
        f" p50 {report['latency_s']['p50']}s p99 {report['latency_s']['p99']}s")
    say(_cache_summary(driver))
    if driver.rstats.any:
        say("resilience: " + ", ".join(
            f"{k} {v}" for k, v in driver.rstats.to_dict().items() if v))
    return report["exit_code"]


def batch_cli(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Run a JSONL job file to completion and aggregate a report",
    )
    parser.add_argument("jobs", help="JSONL job file")
    _add_common_options(parser)
    parser.add_argument("--json", action="store_true",
                        help="print the aggregate batch report as JSON on "
                             "stdout (human summary moves to stderr)")
    parser.add_argument("--verdicts", metavar="FILE",
                        help="also write per-job JSONL verdicts to FILE")
    args = parser.parse_args(argv)
    driver = _build(args, parser)
    jobs = _load(args.jobs, parser)
    say = functools.partial(print, file=sys.stderr) if args.json else print

    verdict_sink = None
    if args.verdicts is not None:
        try:
            verdict_sink = open(args.verdicts, "w")
        except OSError as exc:
            parser.error(f"cannot open verdict file {args.verdicts!r}: {exc}")

    import time

    def emit(outcome: JobOutcome) -> None:
        if verdict_sink is not None:
            verdict_sink.write(json.dumps(outcome.to_json_obj(), sort_keys=True) + "\n")

    t0 = time.perf_counter()
    try:
        with _flight_scope(args):
            outcomes = driver.run(jobs, on_result=emit)
    finally:
        if verdict_sink is not None:
            verdict_sink.close()
    report = driver.aggregate(outcomes, time.perf_counter() - t0)

    say(f"batch: {report['jobs']} jobs on {args.workers} workers"
        f" in {report['wall_s']}s ({report['jobs_per_s']} jobs/s)")
    counts = report["outcomes"]
    say(f"outcomes: {counts['ok']} ok, {counts['non-planar']} non-planar,"
        f" {counts['degraded']} degraded, {counts['error']} error,"
        f" {counts['timeout']} timeout, {counts['quarantined']} quarantined,"
        f" {counts['shed']} shed")
    say(f"latency: p50 {report['latency_s']['p50']}s"
        f" p99 {report['latency_s']['p99']}s max {report['latency_s']['max']}s")
    say(_cache_summary(driver))
    say(f"computations: {report['computed']} of {report['jobs']} jobs")
    if driver.rstats.any:
        say("resilience: " + ", ".join(
            f"{k} {v}" for k, v in driver.rstats.to_dict().items() if v))
    clamp = report["shard_clamp"]
    if clamp is not None:
        say(f"shard clamp: --shard-workers {clamp['requested']} -> "
            f"{clamp['clamped']} ({clamp['workers']} pool workers on "
            f"{clamp['cores']} cores)")
    if report["fault_stats"]:
        say("fault stats: " + ", ".join(
            f"{k} {v}" for k, v in sorted(report["fault_stats"].items()) if v))
    if args.verdicts is not None:
        say(f"verdicts written to {args.verdicts}")
    if args.json:
        print(json.dumps(report, sort_keys=True))
    return report["exit_code"]


def compact_cli(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache-compact",
        description="Rewrite a persistent cache store to its live entries, "
                    "atomically (torn tail dropped, corrupt lines and "
                    "superseded duplicates removed, LRU capacity applied)",
    )
    parser.add_argument("store", help="persistent cache JSONL file")
    parser.add_argument("--cache-size", type=int, default=512, metavar="K",
                        dest="cache_size",
                        help="LRU capacity applied during compaction "
                             "(default 512, matching the serving default)")
    parser.add_argument("--output", metavar="FILE",
                        help="write the compacted store here instead of "
                             "replacing the input in place")
    parser.add_argument("--json", action="store_true",
                        help="print the compaction summary as JSON")
    args = parser.parse_args(argv)
    if args.cache_size < 1:
        parser.error("--cache-size must be >= 1")
    try:
        summary = compact_store(args.store, capacity=args.cache_size, output=args.output)
    except OSError as exc:
        parser.error(f"cannot compact {args.store!r}: {exc}")
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(f"compacted {summary['path']} -> {summary['output']}:"
              f" {summary['entries']} entries under {summary['keys']} keys,"
              f" {summary['bytes_before']} -> {summary['bytes_after']} bytes"
              f" ({summary['skipped']} corrupt skipped,"
              f" {summary['torn_truncated']} torn truncated)")
    return 0
