"""The ``repro serve`` and ``repro batch`` subcommands.

``serve`` reads JSONL jobs from a file or stdin and **streams** one
JSONL verdict line per job to stdout, in submission order, as soon as
each job (and all earlier ones) resolves — the long-running-consumer
mode.  ``batch`` runs a job file to completion and prints one aggregate
report — outcome counts, cache hit/miss counters, throughput, latency
percentiles — human-readable by default, machine-readable with
``--json``; ``--verdicts FILE`` additionally writes the per-job JSONL.

Both exit with the batch partial-failure convention: the **worst**
per-job exit code (0 ok, 1 non-planar, 3 error, 4 degraded; 2 = usage)
— see the consolidated exit-code table in README.md.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys

from .cache import ResultCache
from .driver import JobOutcome, ServiceDriver
from .jobs import JobSpecError, load_jobs

__all__ = ["serve_cli", "batch_cli"]


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="pool worker processes (default 1; 0 = inline "
                             "sequential, the reference driver)")
    parser.add_argument("--shard-workers", type=int, default=0, metavar="K",
                        dest="shard_workers",
                        help="recursion worker processes per job (default 0 = "
                             "sequential; results are bit-identical either "
                             "way; clamped with a warning when workers x K "
                             "oversubscribes the machine)")
    parser.add_argument("--no-cache", action="store_true", dest="no_cache",
                        help="disable the result cache and single-flight "
                             "coalescing: every job computes")
    parser.add_argument("--cache-size", type=int, default=512, metavar="K",
                        dest="cache_size",
                        help="max cached topologies in memory (LRU, default 512)")
    parser.add_argument("--cache-file", metavar="FILE", dest="cache_file",
                        help="persistent JSONL cache store: warm-started on "
                             "launch, appended on every cold result")


def _build(args: argparse.Namespace, parser: argparse.ArgumentParser) -> ServiceDriver:
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.shard_workers < 0:
        parser.error("--shard-workers must be >= 0")
    if args.cache_size < 1:
        parser.error("--cache-size must be >= 1")
    if args.no_cache and args.cache_file:
        parser.error("--no-cache and --cache-file are contradictory")
    cache = None
    if not args.no_cache:
        cache = ResultCache(capacity=args.cache_size, path=args.cache_file)
    return ServiceDriver(
        workers=args.workers, cache=cache, shard_workers=args.shard_workers
    )


def _load(path: str, parser: argparse.ArgumentParser):
    try:
        if path == "-":
            return load_jobs(sys.stdin)
        return load_jobs(path)
    except JobSpecError as exc:
        parser.error(str(exc))
    except OSError as exc:
        parser.error(f"cannot read job file {path!r}: {exc}")


def _cache_summary(driver: ServiceDriver) -> str:
    if driver.cache is None:
        return "cache: disabled"
    stats = driver.cache.stats
    return (
        f"cache: {stats.hits} hits"
        f" ({stats.hits_exact} exact, {stats.hits_canonical} canonical,"
        f" {stats.hits_coalesced} coalesced), {stats.misses} misses"
        f" (= computations), {stats.evictions} evictions"
    )


def serve_cli(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Stream embedding-service verdicts for a JSONL job stream",
    )
    parser.add_argument("jobs", nargs="?", default="-",
                        help="JSONL job file (default '-' = stdin)")
    _add_common_options(parser)
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stderr summary")
    args = parser.parse_args(argv)
    driver = _build(args, parser)
    jobs = _load(args.jobs, parser)
    say = (lambda *a, **k: None) if args.quiet else functools.partial(print, file=sys.stderr)
    say(f"serve: {len(jobs)} jobs, {args.workers} workers"
        + (", cache disabled" if driver.cache is None else ""))

    import time

    def emit(outcome: JobOutcome) -> None:
        print(json.dumps(outcome.to_json_obj(), sort_keys=True), flush=True)

    t0 = time.perf_counter()
    outcomes = driver.run(jobs, on_result=emit)
    report = driver.aggregate(outcomes, time.perf_counter() - t0)
    say(f"serve: {report['jobs']} verdicts in {report['wall_s']}s"
        f" ({report['jobs_per_s']} jobs/s),"
        f" p50 {report['latency_s']['p50']}s p99 {report['latency_s']['p99']}s")
    say(_cache_summary(driver))
    return report["exit_code"]


def batch_cli(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Run a JSONL job file to completion and aggregate a report",
    )
    parser.add_argument("jobs", help="JSONL job file")
    _add_common_options(parser)
    parser.add_argument("--json", action="store_true",
                        help="print the aggregate batch report as JSON on "
                             "stdout (human summary moves to stderr)")
    parser.add_argument("--verdicts", metavar="FILE",
                        help="also write per-job JSONL verdicts to FILE")
    args = parser.parse_args(argv)
    driver = _build(args, parser)
    jobs = _load(args.jobs, parser)
    say = functools.partial(print, file=sys.stderr) if args.json else print

    verdict_sink = None
    if args.verdicts is not None:
        try:
            verdict_sink = open(args.verdicts, "w")
        except OSError as exc:
            parser.error(f"cannot open verdict file {args.verdicts!r}: {exc}")

    import time

    def emit(outcome: JobOutcome) -> None:
        if verdict_sink is not None:
            verdict_sink.write(json.dumps(outcome.to_json_obj(), sort_keys=True) + "\n")

    t0 = time.perf_counter()
    try:
        outcomes = driver.run(jobs, on_result=emit)
    finally:
        if verdict_sink is not None:
            verdict_sink.close()
    report = driver.aggregate(outcomes, time.perf_counter() - t0)

    say(f"batch: {report['jobs']} jobs on {args.workers} workers"
        f" in {report['wall_s']}s ({report['jobs_per_s']} jobs/s)")
    counts = report["outcomes"]
    say(f"outcomes: {counts['ok']} ok, {counts['non-planar']} non-planar,"
        f" {counts['degraded']} degraded, {counts['error']} error")
    say(f"latency: p50 {report['latency_s']['p50']}s"
        f" p99 {report['latency_s']['p99']}s max {report['latency_s']['max']}s")
    say(_cache_summary(driver))
    say(f"computations: {report['computed']} of {report['jobs']} jobs")
    if args.verdicts is not None:
        say(f"verdicts written to {args.verdicts}")
    if args.json:
        print(json.dumps(report, sort_keys=True))
    return report["exit_code"]
