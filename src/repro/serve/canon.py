"""Whole-graph canonical hashing for the serving cache.

The E16 scoped oracle (:mod:`repro.planar.scoped`) already showed that
canonicalizing a *region* — renaming its one fresh copy vertex to a
fixed token — turns isomorphic subproblems into cache hits.  The service
layer needs the same trick at whole-job scope: two submissions of the
same topology under different vertex labels should land on the same
cache line.  This module computes a **label-invariant canonical hash**
of a graph via Weisfeiler–Leman (1-WL) color refinement:

* every vertex starts with a color derived from its degree;
* each round rehashes a vertex's color together with the sorted multiset
  of its neighbors' colors;
* refinement stops when the number of color classes stabilizes (at most
  ``n`` rounds);
* the graph hash digests ``(n, m)``, the sorted multiset of final vertex
  colors, and the sorted multiset of per-edge color pairs.

All hashing uses ``blake2b`` over deterministic byte strings — never
Python's randomized ``hash()`` — so the digest is **stable across
processes and machines**, which the persistent JSONL cache relies on.

1-WL cannot distinguish *every* non-isomorphic pair (co-spectral regular
graphs collide), so the cache layered on top never trusts the hash
alone: exact hits additionally match a submission-order fingerprint, and
isomorphic "remap" hits are only served when refinement is **discrete**
(every vertex got a unique color).  In that case the color order is a
genuine canonical labeling: matching colors between two discretely
refined graphs with equal hashes *is* an isomorphism, because at the
fixpoint equal colors imply equal neighbor-color multisets, so the
color-matching bijection preserves adjacency.  Symmetric families (the
grid's mirror images, cycles) never refine to discrete colors and are
simply served by exact fingerprint instead — correctness never leans on
a heuristic.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..planar.graph import Graph, NodeId, sort_key

__all__ = ["CanonicalForm", "canonical_form", "canonical_hash", "exact_fingerprint"]

#: Digest width for vertex colors and graph hashes (128 bits: birthday
#: collisions are negligible at any realistic cache population).
_DIGEST_SIZE = 16


def _h(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=_DIGEST_SIZE).digest()


@dataclass(frozen=True)
class CanonicalForm:
    """The refinement outcome for one graph.

    ``hash`` is the label-invariant hex digest.  ``labels`` maps every
    vertex to its canonical rank — present **only** when refinement was
    discrete (all colors distinct), i.e. when the ranks constitute a
    canonical labeling usable for isomorphism remapping; ``None``
    otherwise.
    """

    hash: str
    n: int
    m: int
    iterations: int
    labels: dict[NodeId, int] | None = field(default=None, compare=False)

    @property
    def discrete(self) -> bool:
        return self.labels is not None


def canonical_form(graph: Graph) -> CanonicalForm:
    """Run WL refinement on ``graph`` and return its canonical form."""
    nodes = graph.nodes()
    n = len(nodes)
    m = graph.num_edges
    if n == 0:
        return CanonicalForm(hash=_h(b"empty-graph").hex(), n=0, m=0, iterations=0, labels={})

    adj = graph._adj
    color: dict[NodeId, bytes] = {
        v: _h(b"deg:" + len(adj[v]).to_bytes(8, "big")) for v in nodes
    }
    classes = len(set(color.values()))
    iterations = 0
    # Refine until the partition stops splitting.  Colors only ever
    # refine (each new color embeds the old one), so the class count is
    # non-decreasing and the loop runs at most n rounds.
    while classes < n:
        new: dict[NodeId, bytes] = {}
        for v in nodes:
            neighbor_colors = sorted(color[u] for u in adj[v])
            new[v] = _h(color[v] + b"".join(neighbor_colors))
        iterations += 1
        new_classes = len(set(new.values()))
        color = new
        if new_classes == classes:
            break
        classes = new_classes

    hasher = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    hasher.update(b"wl-graph-v1")
    hasher.update(n.to_bytes(8, "big"))
    hasher.update(m.to_bytes(8, "big"))
    for c in sorted(color[v] for v in nodes):
        hasher.update(c)
    for pair in sorted(
        min(color[a], color[b]) + max(color[a], color[b]) for a, b in graph.edges()
    ):
        hasher.update(pair)

    labels: dict[NodeId, int] | None = None
    if classes == n:
        # Discrete refinement: color order is a canonical labeling.
        # Ties are impossible (all colors distinct), so the rank is
        # label-independent.
        ranked = sorted(nodes, key=lambda v: color[v])
        labels = {v: i for i, v in enumerate(ranked)}
    return CanonicalForm(
        hash=hasher.hexdigest(), n=n, m=m, iterations=iterations, labels=labels
    )


def canonical_hash(graph: Graph) -> str:
    """The label-invariant hex digest of ``graph`` (shorthand)."""
    return canonical_form(graph).hash


def exact_fingerprint(graph: Graph) -> str:
    """A digest of the graph *as constructed*: vertex identities plus
    per-vertex adjacency in insertion order.

    Two submissions with equal fingerprints build byte-identical
    adjacency structures, and every algorithm in this library is
    deterministic given that structure — so an exact-fingerprint cache
    hit may legally return the stored report verbatim as "bit-identical
    to a cold run".  Submissions of the same edge set in a *different
    order* get different fingerprints on purpose: insertion order is
    observable in the output rotation, so order-insensitive matching
    would break the bit-identical contract (they still share a canonical
    hash and dedupe at that level).
    """
    hasher = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    hasher.update(b"exact-v1")
    for v in graph.nodes():
        hasher.update(b"\x00v" + sort_key(v).encode())
        for u in graph.neighbors(v):
            hasher.update(b"\x01n" + sort_key(u).encode())
    return hasher.hexdigest()
