"""The service resilience layer: deadlines, seeded retries, pool healing.

E17 gave the *simulated network* a chaos discipline: every fault is a
pure function of a seed, so any incident replays exactly.  This module
lifts that discipline one level up, to the real process layer that
serves traffic (:class:`~repro.serve.driver.ServiceDriver`), where the
failure modes are worker death (``SIGKILL``, OOM, a segfaulting C
extension), slow jobs, full queues, and crashes mid-cache-append:

* :class:`ResiliencePolicy` — per-job wall-clock deadlines and up to K
  retries with exponential backoff whose jitter is a **pure function of
  (seed, job id, attempt)** (:func:`retry_delay`), the same
  replayability contract :class:`~repro.congest.faults.FaultPlan`
  gives message faults;
* :class:`PoolSupervisor` — a generation-tracked process pool that
  detects worker death (``BrokenProcessPool``), respawns the pool once
  per death no matter how many consumers observed it, and lets each
  consumer requeue its in-flight job onto the fresh pool;
* :class:`ResilienceStats` — the shed/requeue/respawn/timeout counters
  the batch report aggregates;
* :class:`ChaosPool` — the process-level chaos harness: seeded worker
  kills and injected latency applied inside pool workers
  (:func:`chaos_execute_job`), plus :func:`torn_append` to simulate a
  crash mid-append on the persistent cache.  Like ``FaultPlan``, every
  decision hashes ``(seed, kind, job id, attempt)``, so a chaos run is
  bit-replayable on any machine.

The driver converts exhausted budgets into three new typed outcomes —
``timeout`` (deadline ran out on every attempt), ``quarantined`` (the
same job repeatedly killed workers; the batch keeps serving, the poison
job is isolated), and ``shed`` (the bounded admission queue was full;
the job was refused without being run) — so every submitted job gets a
verdict even while the pool is dying under it.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ChaosKilledError",
    "ChaosPool",
    "PoolSupervisor",
    "ResiliencePolicy",
    "ResilienceStats",
    "chaos_execute_job",
    "retry_delay",
    "torn_append",
]


def _unit(seed: int, *key: Any) -> float:
    """A deterministic uniform draw in [0, 1) from ``(seed, *key)`` —
    the hash-over-repr idiom of :mod:`repro.congest.faults`, stable
    across processes and machines, independent of evaluation order.
    blake2b rather than CRC-32: here consecutive keys differ only in
    the trailing attempt number, and CRC-32's weak diffusion keeps
    their draws nearly equal — a job drawing "kill" on attempt 0 would
    draw it on every retry too, making every chaos victim a poison
    job.  A real hash decorrelates the attempts."""
    raw = repr((seed, key)).encode("utf-8", "backslashreplace")
    digest = hashlib.blake2b(raw, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


def retry_delay(
    seed: int,
    job_id: str,
    attempt: int,
    base_s: float = 0.05,
    cap_s: float = 2.0,
) -> float:
    """The backoff before retry ``attempt`` (1-based) of ``job_id``.

    Exponential envelope ``min(cap_s, base_s * 2**(attempt-1))`` scaled
    by a deterministic jitter in [0.5, 1.0) — a **pure function** of
    ``(seed, job_id, attempt)`` plus the policy constants, so a chaos
    run's retry schedule replays exactly (the property
    ``tests/serve/test_resilience.py`` pins with hypothesis).  Attempt 0
    is the first try: no delay.
    """
    if attempt < 1:
        return 0.0
    envelope = min(cap_s, base_s * (2.0 ** (attempt - 1)))
    return envelope * (0.5 + 0.5 * _unit(seed, "backoff", job_id, attempt))


@dataclass(frozen=True)
class ResiliencePolicy:
    """Deadlines, retry budget, and admission control for one driver.

    The default policy keeps the pre-resilience driver behavior for
    *job* outcomes (worker-side failures are still typed per-job
    records, never retried — they are deterministic) but adds
    self-healing for *infrastructure* failures: a dead pool is
    respawned and the in-flight job retried up to ``max_retries``
    times.  ``deadline_s`` bounds each attempt's wall clock (pool mode
    only — an inline ``workers=0`` job blocks the event loop and cannot
    be preempted).  ``queue_limit`` bounds the admission queue; overflow
    jobs resolve to the ``shed`` outcome instead of waiting.
    ``quarantine_after`` quarantines a job early once that many of its
    attempts have killed the pool (``None`` = only after the full retry
    budget is spent).
    """

    seed: int = 0
    deadline_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    queue_limit: int = 0  # 0 = unbounded: never shed
    quarantine_after: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be >= 0 (0 = unbounded)")
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1 (or None)")

    def delay(self, job_id: str, attempt: int) -> float:
        return retry_delay(
            self.seed, job_id, attempt, self.backoff_base_s, self.backoff_cap_s
        )


@dataclass
class ResilienceStats:
    """What the resilience layer did to one batch (driver lifetime)."""

    timeouts: int = 0  # attempts that exceeded the per-job deadline
    retries: int = 0  # re-attempts dispatched (after backoff)
    pool_deaths: int = 0  # BrokenProcessPool observations (per job attempt)
    respawns: int = 0  # fresh pools created to replace dead ones
    requeued: int = 0  # in-flight jobs resubmitted after a pool death
    quarantined: int = 0  # jobs isolated after repeated pool-killing failures
    shed: int = 0  # jobs refused at admission (queue full)

    def to_dict(self) -> dict[str, int]:
        return {
            "timeouts": self.timeouts,
            "retries": self.retries,
            "pool_deaths": self.pool_deaths,
            "respawns": self.respawns,
            "requeued": self.requeued,
            "quarantined": self.quarantined,
            "shed": self.shed,
        }

    @property
    def any(self) -> bool:
        return any(self.to_dict().values())


class PoolSupervisor:
    """A self-healing ``ProcessPoolExecutor``: one respawn per death.

    Consumers submit through the supervisor and remember the pool
    *generation* their future came from.  On ``BrokenProcessPool``
    every consumer calls :meth:`heal` with that generation; the first
    one in replaces the pool and bumps the generation, the rest see the
    bump and reuse the fresh pool — so N consumers observing one death
    cost exactly one respawn.
    """

    def __init__(self, workers: int, stats: ResilienceStats | None = None) -> None:
        if workers < 1:
            raise ValueError("PoolSupervisor needs workers >= 1")
        self.workers = workers
        self.stats = stats
        self.generation = 0
        self._pool: ProcessPoolExecutor = ProcessPoolExecutor(max_workers=workers)
        self._lock: Any = None  # created lazily inside the running loop

    def submit(self, loop, fn, *args):
        """Schedule ``fn(*args)`` on the current pool; pair the returned
        awaitable with :attr:`generation` captured *before* the call."""
        return loop.run_in_executor(self._pool, fn, *args)

    async def heal(self, seen_generation: int) -> bool:
        """Replace the pool the caller saw die; True if this call did."""
        import asyncio

        if self._lock is None:
            self._lock = asyncio.Lock()
        async with self._lock:
            if seen_generation != self.generation:
                return False  # a sibling consumer already healed it
            dead, self._pool = self._pool, ProcessPoolExecutor(max_workers=self.workers)
            self.generation += 1
            if self.stats is not None:
                self.stats.respawns += 1
            try:
                dead.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 — a broken pool may refuse teardown
                pass
            return True

    def shutdown(self) -> None:
        """Best-effort teardown; called from a ``finally``."""
        try:
            self._pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001
            pass


class ChaosKilledError(RuntimeError):
    """Inline-mode (``workers=0``) stand-in for a SIGKILLed pool worker:
    the driver treats it exactly like a pool death (retry, quarantine),
    which makes the whole quarantine ladder testable without forking."""


@dataclass(frozen=True)
class ChaosPool:
    """A seeded, fully deterministic process-level chaos schedule.

    Applied *inside* pool workers by :func:`chaos_execute_job`: a kill
    decision ``SIGKILL``\\ s the worker mid-job (surfacing upstream as
    ``BrokenProcessPool`` — the real failure shape), a latency decision
    sleeps before computing.  Every decision is a pure hash of
    ``(seed, kind, job id, attempt)``, so retries see fresh draws and
    the whole chaos run replays bit-identically on any machine.

    ``kill_jobs`` / ``slow_jobs`` name explicit victims (poison-job and
    deadline scenarios): a job in ``kill_jobs`` dies on every attempt
    below ``kill_attempts``; a job in ``slow_jobs`` sleeps
    ``latency_s`` on every attempt.
    """

    seed: int = 0
    kill_rate: float = 0.0
    kill_jobs: tuple = ()
    kill_attempts: int = 1
    latency_rate: float = 0.0
    latency_s: float = 0.0
    slow_jobs: tuple = ()

    def __post_init__(self) -> None:
        for name in ("kill_rate", "latency_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name}={rate} outside [0, 1]")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if self.kill_attempts < 0:
            raise ValueError("kill_attempts must be >= 0")

    def kills(self, job_id: str, attempt: int) -> bool:
        if job_id in self.kill_jobs and attempt < self.kill_attempts:
            return True
        return bool(self.kill_rate) and _unit(
            self.seed, "kill", job_id, attempt
        ) < self.kill_rate

    def latency(self, job_id: str, attempt: int) -> float:
        if job_id in self.slow_jobs:
            return self.latency_s
        if self.latency_rate and _unit(
            self.seed, "latency", job_id, attempt
        ) < self.latency_rate:
            return self.latency_s
        return 0.0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "kill_rate": self.kill_rate,
            "kill_jobs": list(self.kill_jobs),
            "kill_attempts": self.kill_attempts,
            "latency_rate": self.latency_rate,
            "latency_s": self.latency_s,
            "slow_jobs": list(self.slow_jobs),
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "ChaosPool":
        return cls(
            seed=obj.get("seed", 0),
            kill_rate=obj.get("kill_rate", 0.0),
            kill_jobs=tuple(obj.get("kill_jobs", ())),
            kill_attempts=obj.get("kill_attempts", 1),
            latency_rate=obj.get("latency_rate", 0.0),
            latency_s=obj.get("latency_s", 0.0),
            slow_jobs=tuple(obj.get("slow_jobs", ())),
        )

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosPool":
        """Parse a CLI chaos spec, e.g. ``"kill=0.2,latency=0.3:0.05"``.

        ``latency`` takes ``rate[:seconds]``; ``seed=N`` inside the
        spec overrides the ``seed`` argument.
        """
        kwargs: dict[str, Any] = {"seed": seed}
        if spec.strip():
            for item in spec.split(","):
                if "=" not in item:
                    raise ValueError(f"bad chaos spec item {item!r} (expected key=value)")
                key, _, value = item.partition("=")
                key, value = key.strip().lower(), value.strip()
                try:
                    if key == "kill":
                        kwargs["kill_rate"] = float(value)
                    elif key == "latency":
                        rate, _, secs = value.partition(":")
                        kwargs["latency_rate"] = float(rate)
                        if secs:
                            kwargs["latency_s"] = float(secs)
                    elif key == "seed":
                        kwargs["seed"] = int(value)
                    else:
                        raise ValueError(
                            f"unknown chaos class {key!r}; options: kill, latency, seed"
                        )
                except ValueError:
                    raise
        return cls(**kwargs)

    def decisions(self, job_ids, attempts: int = 4) -> list[dict]:
        """The fully-resolved schedule for a set of jobs — the JSONL
        chaos-plan artifact CI uploads next to the flight dump, so a
        failed run's exact kill/latency pattern is in the report."""
        rows = []
        for job_id in job_ids:
            for attempt in range(attempts):
                kill = self.kills(job_id, attempt)
                lat = self.latency(job_id, attempt)
                if kill or lat:
                    rows.append(
                        {
                            "job": job_id,
                            "attempt": attempt,
                            "kill": kill,
                            "latency_s": lat,
                        }
                    )
        return rows


def chaos_execute_job(payload: dict, chaos: dict, attempt: int) -> dict:
    """Worker entry point under chaos: apply the plan, then run the job.

    Module-level so it pickles by reference into pool processes.  A kill
    decision takes the whole worker down with ``SIGKILL`` — the pool
    surfaces that as ``BrokenProcessPool`` to *every* in-flight job,
    exactly like a production OOM kill.
    """
    from .driver import execute_job

    plan = ChaosPool.from_dict(chaos)
    job_id = payload.get("id", "")
    if plan.kills(job_id, attempt):
        os.kill(os.getpid(), signal.SIGKILL)
    delay = plan.latency(job_id, attempt)
    if delay:
        time.sleep(delay)
    return execute_job(payload)


def chaos_execute_inline(payload: dict, plan: ChaosPool, attempt: int) -> dict:
    """The ``workers=0`` twin of :func:`chaos_execute_job`: a kill
    decision raises :class:`ChaosKilledError` instead of nuking the
    process, so the retry/quarantine ladder is testable inline."""
    from .driver import execute_job

    job_id = payload.get("id", "")
    if plan.kills(job_id, attempt):
        raise ChaosKilledError(f"chaos killed job {job_id!r} on attempt {attempt}")
    delay = plan.latency(job_id, attempt)
    if delay:
        time.sleep(delay)
    return execute_job(payload)


def torn_append(path: str, line: str | None = None) -> str:
    """Simulate a crash mid-append on a persistent cache store: write a
    truncated, unterminated prefix of ``line`` (default: a copy of the
    file's last line) with no trailing newline — the exact shape a
    process death between ``write()`` and the page hitting disk leaves.
    Returns the fragment written.  The cache's torn-tail repair
    (:meth:`~repro.serve.cache.ResultCache._replay`) must drop it.
    """
    if line is None:
        with open(path) as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
        if not lines:
            raise ValueError(f"{path!r} has no line to tear")
        line = lines[-1]
    fragment = line[: max(1, len(line) // 2)]
    with open(path, "a") as f:
        f.write(fragment)  # no newline: the append was torn mid-record
    return fragment
