"""repro — reproduction of *Distributed Algorithms for Planar Networks I:
Planar Embedding* (Ghaffari & Haeupler, PODC 2016).

Quickstart::

    from repro import distributed_planar_embedding
    from repro.planar.generators import grid_graph

    result = distributed_planar_embedding(grid_graph(8, 8))
    print(result.rounds, result.rotation[0])

Packages:

* ``repro.congest``    — the CONGEST model simulator (rounds, bandwidth,
  metrics, pipelined cost formulas);
* ``repro.primitives`` — distributed building blocks as real node
  programs (leader election, BFS, convergecast, splitter, coloring);
* ``repro.planar``     — the centralized planar toolkit (rotation
  systems, LR planarity kernel, biconnectivity, generators, verifier);
* ``repro.core``       — the paper's algorithm (parts, interfaces,
  merges, symmetry breaking, recursion, baseline);
* ``repro.certify``    — distributed certification: O(log n)-bit proof
  labels, a CONGEST verifier, and an adversarial tamper harness;
* ``repro.analysis``   — scaling fits and table helpers for benchmarks.
"""

from .certify import build_certificates, run_tamper_suite, verify_distributed
from .core import (
    DistributedPlanarEmbedding,
    EmbeddingResult,
    NonPlanarNetworkError,
    distributed_planar_embedding,
    distributed_planarity_test,
    trivial_baseline_embedding,
)
from .planar import Graph, RotationSystem, verify_planar_embedding

__version__ = "1.0.0"

__all__ = [
    "distributed_planar_embedding",
    "distributed_planarity_test",
    "DistributedPlanarEmbedding",
    "trivial_baseline_embedding",
    "EmbeddingResult",
    "NonPlanarNetworkError",
    "Graph",
    "RotationSystem",
    "verify_planar_embedding",
    "build_certificates",
    "verify_distributed",
    "run_tamper_suite",
    "__version__",
]
