"""Leader election by max-ID flooding.

The paper picks the starting vertex ``s*`` of the embedding as "the
vertex with the largest ID, which can be computed in O(D) rounds"
(Section 4).  Each node floods the best identifier it has seen and
forwards improvements only, so the execution quiesces after exactly
``ecc(s*)`` rounds — the simulator's emergent round count is the real
flooding time, not an asserted bound.

Two executions of the same protocol:

* :class:`MaxIdFloodProgram` under the CONGEST simulator — the
  reference, and the only path under the dense scheduler, fault
  injection, causal recording, or ``REPRO_REFERENCE_PATHS=1``;
* :func:`_fast_flood` — a closed-form replay of exactly what the event
  scheduler would do with those programs.  Flooding is the one phase
  whose per-round behavior is a pure function of the frontier (receive
  max, forward on improvement), so the ledger — rounds, messages,
  words, max edge load, activations, saved activations, phase tags,
  and observer callbacks — can be emitted without instantiating n
  programs or shuffling per-edge inboxes.  It is the dominant
  constant-factor win for the sharded backend (E20): leader election
  is ~40% of a sequential grid run's wall clock and is inherently
  serial, so Amdahl makes everything else moot unless it shrinks.

``tests/primitives/test_leader_fast_path.py`` proves both paths emit
bit-identical ledgers differentially.
"""

from __future__ import annotations

import os
from typing import Any

from ..congest.message import PayloadMeter, word_bits
from ..congest.metrics import RoundMetrics
from ..congest.network import default_scheduler, run_program
from ..congest.node import NodeProgram
from ..obs.causal import default_causal_recorder
from ..planar.graph import Graph, NodeId

__all__ = ["MaxIdFloodProgram", "elect_leader"]

# run_program's default per-edge word budget; ids wider than this (never
# the library's own node ids) must go through the real simulator so the
# bandwidth check raises from the genuine send site.
_BANDWIDTH_WORDS = 8

_FALLBACK = object()  # _fast_flood sentinel: use the simulator


class MaxIdFloodProgram(NodeProgram):
    """Track and forward the largest node ID seen so far.

    Event-driven: forwarding happens only on improvement, and an
    improvement needs an incoming candidate — an empty inbox is a no-op,
    so only the expanding improvement frontier is ever woken.
    """

    event_driven = True

    def __init__(self, node_id: NodeId, neighbors: list[NodeId]) -> None:
        super().__init__(node_id, neighbors)
        self.best = node_id
        self.done = True  # quiescence-terminated

    def on_start(self) -> dict[NodeId, Any]:
        return {u: self.best for u in self.neighbors}

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        improved = False
        for candidate in inbox.values():
            if candidate > self.best:
                self.best = candidate
                improved = True
        if improved:
            return {u: self.best for u in self.neighbors}
        return {}

    def result(self) -> NodeId:
        return self.best


def _fast_flood(graph: Graph, metrics: RoundMetrics | None, phase: str | None):
    """Replay the event scheduler's execution of the flood, exactly.

    Emits the same ``record_round`` / ``record_activations`` /
    ``tag_phase`` / ``observer.on_round`` sequence the simulator would:
    round 1 is every node's ``on_start`` broadcast; each later pass
    wakes exactly the message receivers, and the improved ones
    rebroadcast.  An iteration that sends nothing consumes no round —
    it is the quiescence check — but its activations still count.

    Returns the leader, or :data:`_FALLBACK` when an ID exceeds the
    simulator's bandwidth budget (the simulator must raise that).
    """
    adj = graph._adj
    n = len(adj)
    measure = PayloadMeter(word_bits(max(1, n)))
    # Pre-flight the bandwidth check so a fallback never half-records.
    for v in adj:
        if adj[v] and measure(v) > _BANDWIDTH_WORDS:
            return _FALLBACK
    if metrics is None:
        metrics = RoundMetrics()
    observer = getattr(metrics, "observer", None)
    messages_before = metrics.messages
    words_before = metrics.total_words

    best = dict.fromkeys(adj)  # preserves node order
    recv: dict[NodeId, Any] = {}
    # Round 1: on_start — every node offers its own id on every edge.
    pending = words = max_edge = 0
    activated = n
    iterations = 1
    for v in adj:
        best[v] = v
        deg = len(adj[v])
        if not deg:
            continue
        w = measure(v)
        pending += deg
        words += deg * w
        if w > max_edge:
            max_edge = w
        for u in adj[v]:
            c = recv.get(u)
            if c is None or v > c:
                recv[u] = v
    rounds_used = 0
    if pending:
        rounds_used = 1
        metrics.record_round(pending, words, max_edge)
        if observer is not None:
            observer.on_round(1, pending, words, max_edge)

    round_no = 1
    while pending:
        round_no += 1
        iterations += 1
        activated += len(recv)  # the event loop wakes every receiver
        pending = words = max_edge = 0
        new_recv: dict[NodeId, Any] = {}
        for u, cand in recv.items():
            if cand <= best[u]:
                continue
            best[u] = cand
            w = measure(cand)
            deg = len(adj[u])
            pending += deg
            words += deg * w
            if w > max_edge:
                max_edge = w
            for x in adj[u]:
                c = new_recv.get(x)
                if c is None or cand > c:
                    new_recv[x] = cand
        recv = new_recv
        if pending:
            rounds_used += 1
            metrics.record_round(pending, words, max_edge)
            if observer is not None:
                observer.on_round(round_no, pending, words, max_edge)

    saved = n * iterations - activated
    metrics.record_activations(activated, saved)
    if phase is not None:
        metrics.tag_phase(
            phase,
            rounds_used,
            messages=metrics.messages - messages_before,
            words=metrics.total_words - words_before,
            activations=activated,
            activations_saved=saved,
        )
    (leader,) = set(best.values())
    return leader


def elect_leader(
    graph: Graph, metrics: RoundMetrics | None = None, phase: str = "leader-election"
) -> NodeId:
    """Elect the max-ID node of a connected graph; O(D) real rounds.

    Uses the closed-form flood replay whenever the ambient configuration
    matches what it models — the event scheduler with no fault injector
    and no causal recorder, reference paths off — and the full simulator
    otherwise.  Both emit bit-identical ledgers.
    """
    if graph.num_nodes == 0:
        raise ValueError("cannot elect a leader of an empty graph")
    if (
        default_scheduler() == "event"
        and default_causal_recorder() is None
        and os.environ.get("REPRO_REFERENCE_PATHS", "") in ("", "0")
    ):
        from ..congest.faults import default_fault_injector

        if default_fault_injector() is None:
            leader = _fast_flood(graph, metrics, phase)
            if leader is not _FALLBACK:
                return leader
    results = run_program(graph, MaxIdFloodProgram, metrics=metrics, phase=phase)
    (leader,) = set(results.values())
    return leader
