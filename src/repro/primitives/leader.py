"""Leader election by max-ID flooding.

The paper picks the starting vertex ``s*`` of the embedding as "the
vertex with the largest ID, which can be computed in O(D) rounds"
(Section 4).  Each node floods the best identifier it has seen and
forwards improvements only, so the execution quiesces after exactly
``ecc(s*)`` rounds — the simulator's emergent round count is the real
flooding time, not an asserted bound.
"""

from __future__ import annotations

from typing import Any

from ..congest.metrics import RoundMetrics
from ..congest.network import run_program
from ..congest.node import NodeProgram
from ..planar.graph import Graph, NodeId

__all__ = ["MaxIdFloodProgram", "elect_leader"]


class MaxIdFloodProgram(NodeProgram):
    """Track and forward the largest node ID seen so far.

    Event-driven: forwarding happens only on improvement, and an
    improvement needs an incoming candidate — an empty inbox is a no-op,
    so only the expanding improvement frontier is ever woken.
    """

    event_driven = True

    def __init__(self, node_id: NodeId, neighbors: list[NodeId]) -> None:
        super().__init__(node_id, neighbors)
        self.best = node_id
        self.done = True  # quiescence-terminated

    def on_start(self) -> dict[NodeId, Any]:
        return {u: self.best for u in self.neighbors}

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        improved = False
        for candidate in inbox.values():
            if candidate > self.best:
                self.best = candidate
                improved = True
        if improved:
            return {u: self.best for u in self.neighbors}
        return {}

    def result(self) -> NodeId:
        return self.best


def elect_leader(
    graph: Graph, metrics: RoundMetrics | None = None, phase: str = "leader-election"
) -> NodeId:
    """Elect the max-ID node of a connected graph; O(D) real rounds."""
    if graph.num_nodes == 0:
        raise ValueError("cannot elect a leader of an empty graph")
    results = run_program(graph, MaxIdFloodProgram, metrics=metrics, phase=phase)
    (leader,) = set(results.values())
    return leader
