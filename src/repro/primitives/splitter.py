"""The 2/3-balanced splitter vertex of a rooted tree.

Section 4: "We find a vertex ``v ∈ T_s`` such that when we remove ``v``
from ``T_s``, each of the remaining components has size at most
``2|T_s|/3``.  Note that such a vertex always exists and furthermore, it
can be computed distributedly in O(d) time where ``d = depth(T_s)``."

The classical construction: walk down from the root, always moving into a
child whose subtree still holds at least ``|T_s|/3`` vertices; the walk
stops at the *deepest* vertex ``v`` with ``|T_v| >= |T_s|/3``.  Every
child component of ``v`` then has ``< |T_s|/3 <= 2|T_s|/3`` vertices and
the component above ``v`` has ``<= |T_s| - |T_s|/3 <= 2|T_s|/3``.

The distributed version is a token walk: after the subtree-size
convergecast (each parent knows its children's sizes), the root launches
a token that hops to a qualifying child until none exists — at most
``depth`` additional real rounds.
"""

from __future__ import annotations

from typing import Any

from ..congest.metrics import RoundMetrics
from ..congest.network import CongestNetwork
from ..congest.node import NodeProgram
from ..planar.graph import Graph, NodeId
from .subtree import SubtreeStats, compute_subtree_stats

__all__ = ["SplitterWalkProgram", "find_splitter", "splitter_components"]


class SplitterWalkProgram(NodeProgram):
    """One hop of the token walk toward the splitter vertex.

    Event-driven: exactly one token exists, so exactly one node acts per
    round — the sharpest case for the active-set scheduler (the dense
    loop would wake all ``n`` nodes per hop for this single-token walk).
    """

    event_driven = True

    def __init__(
        self,
        node_id: NodeId,
        neighbors: list[NodeId],
        root: NodeId,
        child_sizes: dict[NodeId, int],
        threshold: int,
    ) -> None:
        super().__init__(node_id, neighbors)
        self.root = root
        self.child_sizes = child_sizes
        self.threshold = threshold
        self.is_splitter = False
        self.done = True  # quiescence-terminated

    def _handle_token(self) -> dict[NodeId, Any]:
        eligible = {c: s for c, s in self.child_sizes.items() if 3 * s >= self.threshold}
        if not eligible:
            self.is_splitter = True
            return {}
        target = max(eligible, key=lambda c: (eligible[c], repr(c)))
        return {target: ("token", 0)}

    def on_start(self) -> dict[NodeId, Any]:
        if self.node_id == self.root:
            return self._handle_token()
        return {}

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        for _, (tag, _) in inbox.items():
            if tag == "token":
                return self._handle_token()
        return {}

    def result(self) -> bool:
        return self.is_splitter


def find_splitter(
    tree_graph: Graph,
    root: NodeId,
    parent: dict[NodeId, NodeId | None],
    children: dict[NodeId, list[NodeId]],
    metrics: RoundMetrics | None = None,
    stats: SubtreeStats | None = None,
) -> NodeId:
    """Find the 2/3 splitter of the tree distributedly (O(depth) rounds)."""
    if stats is None:
        stats = compute_subtree_stats(tree_graph, parent, children, metrics=metrics)
    total = stats.size[root]
    network = CongestNetwork(tree_graph, metrics=metrics)
    programs = {
        v: SplitterWalkProgram(
            v, tree_graph.neighbors(v), root, stats.child_sizes[v], total
        )
        for v in tree_graph.nodes()
    }
    results = network.run(programs, phase="splitter-walk")
    splitters = [v for v, hit in results.items() if hit]
    if len(splitters) != 1:
        raise AssertionError(f"token walk produced {len(splitters)} splitters")
    return splitters[0]


def splitter_components(
    root: NodeId,
    splitter: NodeId,
    parent: dict[NodeId, NodeId | None],
    children: dict[NodeId, list[NodeId]],
    subtree_nodes: set[NodeId],
) -> list[set[NodeId]]:
    """The components of ``T_s`` minus the splitter (for Lemma 4.2 checks)."""
    components: list[set[NodeId]] = []
    for c in children.get(splitter, ()):
        comp: set[NodeId] = set()
        stack = [c]
        while stack:
            v = stack.pop()
            comp.add(v)
            stack.extend(children.get(v, ()))
        components.append(comp)
    above = set(subtree_nodes) - {splitter} - set().union(*components) if components else set(
        subtree_nodes
    ) - {splitter}
    if above:
        components.append(above)
    return components
