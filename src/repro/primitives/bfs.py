"""Distributed BFS tree construction.

The global BFS tree ``T`` rooted at ``s*`` is the backbone of the whole
embedding algorithm (Section 4): recursion operates on its subtrees, and
``P0`` parts are BFS tree paths (whose induced-path property powers
Lemma 4.1).  BFS also gives every node ``n`` and a 2-approximation of
``D`` "in O(D) rounds" (Section 2); we expose those too.

The construction is the textbook layered flood: the root announces layer
0; an unassigned node adopts the minimum-ID neighbor among its first
offers as parent and re-floods.  Children discover themselves via
explicit join messages, so afterwards each node knows parent, children,
and depth — exactly the local knowledge the recursion needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..congest.metrics import RoundMetrics
from ..congest.network import CongestNetwork
from ..congest.node import NodeProgram
from ..planar.graph import Graph, NodeId

__all__ = ["BfsProgram", "BfsTree", "build_bfs_tree"]


@dataclass
class BfsTree:
    """The global outcome of a BFS execution (assembled from local results)."""

    root: NodeId
    parent: dict[NodeId, NodeId | None]
    children: dict[NodeId, list[NodeId]]
    depth_of: dict[NodeId, int]
    depth: int = field(init=False)

    def __post_init__(self) -> None:
        self.depth = max(self.depth_of.values(), default=0)

    def subtree_nodes(self, s: NodeId) -> set[NodeId]:
        """All nodes of the subtree ``T_s`` rooted at ``s``."""
        nodes = {s}
        stack = [s]
        while stack:
            v = stack.pop()
            for c in self.children.get(v, ()):
                nodes.add(c)
                stack.append(c)
        return nodes

    def path_to_descendant(self, s: NodeId, v: NodeId) -> list[NodeId]:
        """The tree path from ``s`` down to its descendant ``v``."""
        path = [v]
        while path[-1] != s:
            p = self.parent[path[-1]]
            if p is None:
                raise ValueError(f"{v!r} is not a descendant of {s!r}")
            path.append(p)
        path.reverse()
        return path

    def subtree_depth(self, s: NodeId) -> int:
        """Depth of the subtree rooted at ``s`` (0 for a leaf)."""
        base = self.depth_of[s]
        return max(self.depth_of[v] for v in self.subtree_nodes(s)) - base


class BfsProgram(NodeProgram):
    """Per-node BFS participant.

    Event-driven: a node acts only on arriving ``layer``/``join``
    messages (the root fires once in ``on_start``); an empty inbox is a
    no-op, so the scheduler wakes only the BFS wavefront each round.
    """

    event_driven = True

    def __init__(self, node_id: NodeId, neighbors: list[NodeId], root: NodeId) -> None:
        super().__init__(node_id, neighbors)
        self.root = root
        self.parent: NodeId | None = None
        self.depth: int | None = 0 if node_id == root else None
        self.children: list[NodeId] = []
        self.done = True  # quiescence-terminated

    def on_start(self) -> dict[NodeId, Any]:
        if self.node_id == self.root:
            return {u: ("layer", 0) for u in self.neighbors}
        return {}

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        outbox: dict[NodeId, Any] = {}
        offers = {u: d for u, (tag, d) in inbox.items() if tag == "layer"}
        for u, (tag, _) in inbox.items():
            if tag == "join":
                self.children.append(u)
        if self.depth is None and offers:
            parent = min(offers)  # deterministic tie-break: smallest ID
            self.parent = parent
            self.depth = offers[parent] + 1
            outbox[parent] = ("join", 0)
            for u in self.neighbors:
                if u != parent:
                    outbox[u] = ("layer", self.depth)
        return outbox

    def result(self) -> tuple[NodeId | None, int | None, list[NodeId]]:
        return (self.parent, self.depth, sorted(self.children, key=repr))


def build_bfs_tree(
    graph: Graph, root: NodeId, metrics: RoundMetrics | None = None, phase: str = "bfs"
) -> BfsTree:
    """Run distributed BFS from ``root``; O(D) real rounds."""
    network = CongestNetwork(graph, metrics=metrics)
    programs = {v: BfsProgram(v, graph.neighbors(v), root) for v in graph.nodes()}
    results = network.run(programs, phase=phase)
    parent: dict[NodeId, NodeId | None] = {}
    children: dict[NodeId, list[NodeId]] = {}
    depth_of: dict[NodeId, int] = {}
    for v, (p, d, ch) in results.items():
        if d is None:
            raise ValueError(f"graph is disconnected: {v!r} unreached from {root!r}")
        parent[v] = p
        children[v] = ch
        depth_of[v] = d
    return BfsTree(root=root, parent=parent, children=children, depth_of=depth_of)
