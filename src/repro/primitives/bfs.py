"""Distributed BFS tree construction.

The global BFS tree ``T`` rooted at ``s*`` is the backbone of the whole
embedding algorithm (Section 4): recursion operates on its subtrees, and
``P0`` parts are BFS tree paths (whose induced-path property powers
Lemma 4.1).  BFS also gives every node ``n`` and a 2-approximation of
``D`` "in O(D) rounds" (Section 2); we expose those too.

The construction is a self-correcting layered flood: the root announces
layer 0; a node adopts the lexicographically minimal ``(depth+1, id)``
offer among the freshest depths heard from its neighbors, and keeps
relaxing — re-announcing and retracting a stale ``join`` with an
``unjoin`` — whenever a better offer arrives.  On a fault-free
synchronous network every node hears all its distance-``d-1`` neighbors
in the same round, so the relaxation fires exactly once per node and the
message pattern is the textbook flood.  Under the reliable-delivery
layer (:mod:`repro.congest.reliable`), where retransmissions skew
arrival rounds, the relaxation converges to the *same canonical tree*:
depth = true BFS distance, parent = minimum-ID neighbor one layer up.
Downstream phases (Lemma 4.1 induced paths, the merge machinery) rely on
the BFS level property — every graph edge spans at most one layer — so
"first offer wins" is not merely suboptimal under delays, it is wrong.
Children discover themselves via explicit join messages, so afterwards
each node knows parent, children, and depth — exactly the local
knowledge the recursion needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..congest.metrics import RoundMetrics
from ..congest.network import CongestNetwork
from ..congest.node import NodeProgram
from ..planar.graph import Graph, NodeId

__all__ = ["BfsProgram", "BfsTree", "build_bfs_tree"]


@dataclass
class BfsTree:
    """The global outcome of a BFS execution (assembled from local results)."""

    root: NodeId
    parent: dict[NodeId, NodeId | None]
    children: dict[NodeId, list[NodeId]]
    depth_of: dict[NodeId, int]
    depth: int = field(init=False)

    def __post_init__(self) -> None:
        self.depth = max(self.depth_of.values(), default=0)

    def subtree_nodes(self, s: NodeId) -> set[NodeId]:
        """All nodes of the subtree ``T_s`` rooted at ``s``."""
        nodes = {s}
        stack = [s]
        while stack:
            v = stack.pop()
            for c in self.children.get(v, ()):
                nodes.add(c)
                stack.append(c)
        return nodes

    def path_to_descendant(self, s: NodeId, v: NodeId) -> list[NodeId]:
        """The tree path from ``s`` down to its descendant ``v``."""
        path = [v]
        while path[-1] != s:
            p = self.parent[path[-1]]
            if p is None:
                raise ValueError(f"{v!r} is not a descendant of {s!r}")
            path.append(p)
        path.reverse()
        return path

    def subtree_depth(self, s: NodeId) -> int:
        """Depth of the subtree rooted at ``s`` (0 for a leaf)."""
        base = self.depth_of[s]
        return max(self.depth_of[v] for v in self.subtree_nodes(s)) - base


class BfsProgram(NodeProgram):
    """Per-node BFS participant.

    Event-driven: a node acts only on arriving ``layer``/``join``/
    ``unjoin`` messages (the root fires once in ``on_start``); an empty
    inbox is a no-op, so the scheduler wakes only the BFS wavefront each
    round.  Every message carries the sender's current depth; ``join``
    and ``unjoin`` double as depth announcements so a parent change
    never needs two messages on one edge in one round.
    """

    event_driven = True

    def __init__(self, node_id: NodeId, neighbors: list[NodeId], root: NodeId) -> None:
        super().__init__(node_id, neighbors)
        self.root = root
        self.parent: NodeId | None = None
        self.depth: int | None = 0 if node_id == root else None
        self.children: set[NodeId] = set()
        self.offers: dict[NodeId, int] = {}  # freshest depth heard, per neighbor
        self.done = True  # quiescence-terminated

    def on_start(self) -> dict[NodeId, Any]:
        if self.node_id == self.root:
            return {u: ("layer", 0) for u in self.neighbors}
        return {}

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        for u, (tag, d) in inbox.items():
            if tag == "join":
                self.children.add(u)
            elif tag == "unjoin":
                self.children.discard(u)
            self.offers[u] = d  # in-order links: the latest depth is freshest
        return self._relax()

    def _relax(self) -> dict[NodeId, Any]:
        """Adopt the best known offer; announce and re-parent on improvement.

        Depths only ever shrink, so the fixed point is the canonical
        tree: ``depth`` = distance from the root, ``parent`` = the
        minimum-ID neighbor one layer closer.  On a synchronous
        fault-free network this fires exactly once per node (all
        best offers arrive together), reproducing the plain flood.
        """
        if self.node_id == self.root or not self.offers:
            return {}
        parent, d = min(self.offers.items(), key=lambda kv: (kv[1], kv[0]))
        if self.depth is not None and (d + 1, parent) >= (self.depth, self.parent):
            return {}
        old_parent = self.parent
        self.parent = parent
        self.depth = d + 1
        outbox: dict[NodeId, Any] = {parent: ("join", self.depth)}
        if old_parent is not None and old_parent != parent:
            outbox[old_parent] = ("unjoin", self.depth)
        for u in self.neighbors:
            if u not in outbox:
                outbox[u] = ("layer", self.depth)
        return outbox

    def result(self) -> tuple[NodeId | None, int | None, list[NodeId]]:
        return (self.parent, self.depth, sorted(self.children, key=repr))


def build_bfs_tree(
    graph: Graph, root: NodeId, metrics: RoundMetrics | None = None, phase: str = "bfs"
) -> BfsTree:
    """Run distributed BFS from ``root``; O(D) real rounds."""
    network = CongestNetwork(graph, metrics=metrics)
    programs = {v: BfsProgram(v, graph.neighbors(v), root) for v in graph.nodes()}
    results = network.run(programs, phase=phase)
    parent: dict[NodeId, NodeId | None] = {}
    children: dict[NodeId, list[NodeId]] = {}
    depth_of: dict[NodeId, int] = {}
    for v, (p, d, ch) in results.items():
        if d is None:
            raise ValueError(f"graph is disconnected: {v!r} unreached from {root!r}")
        parent[v] = p
        children[v] = ch
        depth_of[v] = d
    return BfsTree(root=root, parent=parent, children=children, depth_of=depth_of)
