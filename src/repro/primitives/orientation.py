"""Low-arboricity orientations of everywhere-sparse graphs.

Section 7.1.3 of the paper's full version (not included in the extended
abstract) gives a deterministic O(1)-round algorithm, based on
Slepian-Wolf style distributed source coding, that lets every vertex of
an everywhere-sparse graph learn its induced neighborhood, and uses it to
compute a low-arboricity orientation.  The coding-theoretic construction
is unavailable here; per the reproduction's substitution rule we provide
the classical peeling alternative (Barenboim-Elkin H-partition):

* repeatedly peel all vertices of degree <= ``2 * sparsity`` — for a
  graph of arboricity ``a`` and ``sparsity >= a``, a constant fraction of
  the remaining vertices is peeled per phase, so ``O(log n)`` phases
  suffice (each phase is one synchronous step);
* orient every edge from the earlier-peeled endpoint to the later one
  (ties by ID), giving out-degree <= ``2 * sparsity``;
* with bounded out-degree, each vertex announces its out-neighbor list
  (``O(sparsity)`` words) to all neighbors in ``O(sparsity)`` steps,
  after which everyone knows its induced neighborhood.

Planar graphs have arboricity <= 3, so ``sparsity=3`` peels at degree 6
and yields out-degree <= 6; the deviation from the paper (O(log n) vs
O(1) steps) is recorded in DESIGN.md §3 and measured in the benchmarks.

Scheduling: like :mod:`repro.primitives.coloring` this is a
synchronous-step simulation accounted by exact charges, not a per-round
node-program loop, so it is unaffected by (and costs nothing under)
either CONGEST scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..planar.graph import Graph, NodeId, edge_id

__all__ = ["SparseOrientation", "peel_orientation", "neighborhood_views"]


@dataclass
class SparseOrientation:
    """An acyclic orientation with bounded out-degree."""

    layer: dict[NodeId, int]
    out_neighbors: dict[NodeId, list[NodeId]]
    phases: int
    max_out_degree: int


def peel_orientation(graph: Graph, sparsity: int = 3) -> SparseOrientation:
    """H-partition peeling; returns the orientation and the phase count."""
    if sparsity < 1:
        raise ValueError("sparsity must be >= 1")
    threshold = 2 * sparsity
    remaining = {v: graph.degree(v) for v in graph.nodes()}
    layer: dict[NodeId, int] = {}
    phases = 0
    active = set(graph.nodes())
    while active:
        peel = {v for v in active if remaining[v] <= threshold}
        if not peel:
            raise ValueError(
                f"graph is denser than arboricity {sparsity} allows (no peelable vertex)"
            )
        for v in peel:
            layer[v] = phases
        active -= peel
        for v in peel:
            for u in graph.neighbors(v):
                if u in active:
                    remaining[u] -= 1
        phases += 1

    out_neighbors: dict[NodeId, list[NodeId]] = {v: [] for v in graph.nodes()}
    for u, v in graph.edges():
        if (layer[u], repr(u)) <= (layer[v], repr(v)):
            out_neighbors[u].append(v)
        else:
            out_neighbors[v].append(u)
    max_out = max((len(ns) for ns in out_neighbors.values()), default=0)
    return SparseOrientation(
        layer=layer, out_neighbors=out_neighbors, phases=phases, max_out_degree=max_out
    )


def neighborhood_views(
    graph: Graph, orientation: SparseOrientation | None = None, sparsity: int = 3
) -> tuple[dict[NodeId, Graph], int]:
    """Every vertex learns the graph induced by its closed neighborhood.

    Returns the per-vertex views and the number of synchronous steps the
    distributed exchange needs: each vertex forwards its out-neighbor
    list (``<= max_out_degree`` words) to all neighbors, so with one word
    per edge per round the exchange is ``max_out_degree`` steps, after
    the peeling phases.
    """
    if orientation is None:
        orientation = peel_orientation(graph, sparsity)
    views: dict[NodeId, Graph] = {}
    for v in graph.nodes():
        closed = {v, *graph.neighbors(v)}
        view = Graph(nodes=sorted(closed, key=repr))
        # v sees edge {a, b} iff a (or b) announced it: every edge is
        # announced by its tail, and v hears announcements of all its
        # neighbors (and its own).
        for a in closed:
            if a == v or graph.has_edge(a, v):
                for b in orientation.out_neighbors[a]:
                    if b in closed:
                        view.add_edge(a, b)
        views[v] = view
    steps = orientation.phases + orientation.max_out_degree
    # Correctness of the views is structural; verify against ground truth.
    for v, view in views.items():
        closed = {v, *graph.neighbors(v)}
        truth = {
            edge_id(a, b)
            for a in closed
            for b in graph.neighbors(a)
            if b in closed
        }
        got = {edge_id(a, b) for a, b in view.edges()}
        if got != truth:  # pragma: no cover - invariant
            raise AssertionError(f"neighborhood view of {v!r} is wrong")
    return views, steps
