"""Subtree sizes and heights via convergecast.

A recursive call of the embedding algorithm owns a BFS subtree ``T_s``;
before it can pick the 2/3-balanced splitter vertex (Section 4, "The
Partitioning") every vertex must know the size of its own subtree and a
parent must know each child's.  One convergecast of (size, height) pairs
— ``depth(T_s)`` real rounds — provides both.

Scheduling: this module's only message passing is the
:class:`~repro.primitives.aggregation.ConvergecastProgram`, which is
event-driven, so a subtree-stats pass wakes each node O(1) times rather
than once per round.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..congest.metrics import RoundMetrics
from ..planar.graph import Graph, NodeId
from .aggregation import tree_aggregate

__all__ = ["SubtreeStats", "compute_subtree_stats"]


@dataclass
class SubtreeStats:
    """Per-node subtree knowledge after the convergecast."""

    size: dict[NodeId, int]
    height: dict[NodeId, int]
    child_sizes: dict[NodeId, dict[NodeId, int]]

    @property
    def total(self) -> int:
        return max(self.size.values(), default=0)


def compute_subtree_stats(
    tree_graph: Graph,
    parent: dict[NodeId, NodeId | None],
    children: dict[NodeId, list[NodeId]],
    metrics: RoundMetrics | None = None,
) -> SubtreeStats:
    """Convergecast (size, height) over a rooted tree; depth real rounds."""
    values = {v: (1, 0) for v in tree_graph.nodes()}

    def combine(items: list[tuple[int, int]]) -> tuple[int, int]:
        own_size, _ = items[0]
        size = own_size + sum(s for s, _ in items[1:])
        height = 1 + max((h for _, h in items[1:]), default=-1)
        return (size, height)

    results = tree_aggregate(
        tree_graph, parent, children, values, combine, metrics=metrics, phase="subtree-stats"
    )
    size: dict[NodeId, int] = {}
    height: dict[NodeId, int] = {}
    child_sizes: dict[NodeId, dict[NodeId, int]] = {}
    for v, (subtree_value, received) in results.items():
        s, h = subtree_value
        size[v] = s
        height[v] = h
        child_sizes[v] = {c: payload[0] for c, payload in received.items()}
    return SubtreeStats(size=size, height=height, child_sizes=child_sizes)
