"""Distributed building blocks running as real CONGEST node programs."""

from .aggregation import (
    BroadcastProgram,
    ConvergecastProgram,
    tree_aggregate,
    tree_broadcast,
)
from .bfs import BfsProgram, BfsTree, build_bfs_tree
from .estimation import NetworkEstimate, estimate_network
from .coloring import (
    cole_vishkin_3coloring,
    is_proper_coloring,
    log_star,
    mis_from_coloring,
)
from .leader import MaxIdFloodProgram, elect_leader
from .orientation import SparseOrientation, neighborhood_views, peel_orientation
from .splitter import SplitterWalkProgram, find_splitter, splitter_components
from .subtree import SubtreeStats, compute_subtree_stats

__all__ = [
    "elect_leader",
    "MaxIdFloodProgram",
    "build_bfs_tree",
    "BfsTree",
    "BfsProgram",
    "estimate_network",
    "NetworkEstimate",
    "tree_aggregate",
    "tree_broadcast",
    "ConvergecastProgram",
    "BroadcastProgram",
    "compute_subtree_stats",
    "SubtreeStats",
    "find_splitter",
    "splitter_components",
    "SplitterWalkProgram",
    "cole_vishkin_3coloring",
    "mis_from_coloring",
    "is_proper_coloring",
    "log_star",
    "peel_orientation",
    "neighborhood_views",
    "SparseOrientation",
]
