"""Distributed estimation of n and D (paper Section 2).

"Note that in O(D) rounds, nodes can easily compute both the number of
nodes n and a 2-approximation of D, using a BFS.  Thus, these will be
assumed known throughout the paper."

This module is that preamble, as real message passing: a BFS from the
leader, a convergecast counting nodes and measuring the BFS height, and
a broadcast distributing (n, 2-approx of D) to everyone.  The
2-approximation is the standard one: the BFS eccentricity ``ecc(root)``
satisfies ``ecc <= D <= 2*ecc``.

Scheduling: every constituent (leader election, BFS, convergecast,
broadcast) runs event-driven node programs, so the whole preamble wakes
each node O(1) times per sub-protocol instead of once per round.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..congest.metrics import RoundMetrics
from ..planar.graph import Graph
from .aggregation import tree_aggregate, tree_broadcast
from .bfs import build_bfs_tree
from .leader import elect_leader

__all__ = ["NetworkEstimate", "estimate_network"]


@dataclass(frozen=True)
class NetworkEstimate:
    """What every node knows after the O(D) preamble."""

    n: int
    diameter_lower: int  # ecc(root) <= D
    diameter_upper: int  # 2 * ecc(root) >= D
    leader: object


def estimate_network(graph: Graph, metrics: RoundMetrics | None = None) -> NetworkEstimate:
    """Run the Section 2 preamble; every node ends up knowing (n, ~D)."""
    if graph.num_nodes == 0:
        raise ValueError("empty network")
    if graph.num_nodes == 1:
        (v,) = graph.nodes()
        return NetworkEstimate(n=1, diameter_lower=0, diameter_upper=0, leader=v)
    leader = elect_leader(graph, metrics=metrics)
    tree = build_bfs_tree(graph, leader, metrics=metrics)

    def combine(items):
        own_count, _ = items[0]
        count = own_count + sum(c for c, _ in items[1:])
        height = 1 + max((h for _, h in items[1:]), default=-1)
        return (count, height)

    results = tree_aggregate(
        graph,
        tree.parent,
        tree.children,
        {v: (1, 0) for v in graph.nodes()},
        combine,
        metrics=metrics,
        phase="estimate-n-D",
    )
    n, ecc = results[leader][0]
    received = tree_broadcast(
        graph,
        tree.parent,
        tree.children,
        root_value=(n, ecc),
        metrics=metrics,
        phase="estimate-n-D",
    )
    if any(received[v] != (n, ecc) for v in graph.nodes()):  # pragma: no cover
        raise AssertionError("broadcast did not reach every node")
    return NetworkEstimate(
        n=n, diameter_lower=ecc, diameter_upper=2 * ecc, leader=leader
    )
