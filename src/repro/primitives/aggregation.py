"""Tree convergecast and broadcast (the paper's 'standard upcast/downcast').

These are the real message-passing counterparts of the cost formulas in
:mod:`repro.congest.pipelining`: a convergecast combines one word per
node up a rooted tree in ``depth`` rounds; a broadcast pushes one word
down in ``depth`` rounds.  They run only over tree edges (the tree must
be a subgraph of the communication graph).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..congest.metrics import RoundMetrics
from ..congest.network import CongestNetwork
from ..congest.node import NodeProgram
from ..planar.graph import Graph, NodeId

__all__ = ["ConvergecastProgram", "BroadcastProgram", "tree_aggregate", "tree_broadcast"]


class ConvergecastProgram(NodeProgram):
    """Combine values up a rooted tree; every node learns its subtree value.

    Event-driven: leaves fire in ``on_start``; an inner node sends only
    when the last child's value arrives, so an empty inbox is a no-op and
    only the upward wavefront is woken.
    """

    event_driven = True

    def __init__(
        self,
        node_id: NodeId,
        neighbors: list[NodeId],
        parent: NodeId | None,
        children: list[NodeId],
        value: Any,
        combine: Callable[[list[Any]], Any],
    ) -> None:
        super().__init__(node_id, neighbors)
        self.parent = parent
        self.children = list(children)
        self.value = value
        self.combine = combine
        self.received: dict[NodeId, Any] = {}
        self.subtree_value: Any = None
        self.sent = False
        self.done = True  # quiescence-terminated

    def _maybe_send(self) -> dict[NodeId, Any]:
        if self.sent or len(self.received) < len(self.children):
            return {}
        self.sent = True
        self.subtree_value = self.combine(
            [self.value] + [self.received[c] for c in self.children]
        )
        if self.parent is not None:
            return {self.parent: ("agg", self.subtree_value)}
        return {}

    def on_start(self) -> dict[NodeId, Any]:
        return self._maybe_send()

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        for u, (tag, payload) in inbox.items():
            if tag == "agg":
                self.received[u] = payload
        return self._maybe_send()

    def result(self) -> tuple[Any, dict[NodeId, Any]]:
        return self.subtree_value, dict(self.received)


_UNSET = object()


class BroadcastProgram(NodeProgram):
    """Push a root value down a rooted tree.

    Event-driven: the root fires in ``on_start``; everyone else forwards
    exactly once, on receipt — only the downward wavefront is woken.
    """

    event_driven = True

    def __init__(
        self,
        node_id: NodeId,
        neighbors: list[NodeId],
        parent: NodeId | None,
        children: list[NodeId],
        root_value: Any = None,
    ) -> None:
        super().__init__(node_id, neighbors)
        self.parent = parent
        self.children = list(children)
        self.value = root_value if parent is None else _UNSET
        self.sent = False
        self.done = True

    def _maybe_send(self) -> dict[NodeId, Any]:
        if self.value is _UNSET or self.sent:
            return {}
        self.sent = True
        return {c: ("bc", self.value) for c in self.children}

    def on_start(self) -> dict[NodeId, Any]:
        return self._maybe_send()

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        for _, (tag, payload) in inbox.items():
            if tag == "bc":
                self.value = payload
        return self._maybe_send()

    def result(self) -> Any:
        return None if self.value is _UNSET else self.value


def tree_aggregate(
    graph: Graph,
    parent: dict[NodeId, NodeId | None],
    children: dict[NodeId, list[NodeId]],
    values: dict[NodeId, Any],
    combine: Callable[[list[Any]], Any],
    metrics: RoundMetrics | None = None,
    phase: str = "convergecast",
) -> dict[NodeId, tuple[Any, dict[NodeId, Any]]]:
    """Run a convergecast; each node's result is (subtree value, child values)."""
    network = CongestNetwork(graph, metrics=metrics)
    programs = {
        v: ConvergecastProgram(
            v, graph.neighbors(v), parent[v], children.get(v, []), values[v], combine
        )
        for v in graph.nodes()
    }
    return network.run(programs, phase=phase)


def tree_broadcast(
    graph: Graph,
    parent: dict[NodeId, NodeId | None],
    children: dict[NodeId, list[NodeId]],
    root_value: Any,
    metrics: RoundMetrics | None = None,
    phase: str = "broadcast",
) -> dict[NodeId, Any]:
    """Broadcast ``root_value`` down the tree; every node's result is the value."""
    network = CongestNetwork(graph, metrics=metrics)
    programs = {
        v: BroadcastProgram(v, graph.neighbors(v), parent[v], children.get(v, []), root_value)
        for v in graph.nodes()
    }
    return network.run(programs, phase=phase)
