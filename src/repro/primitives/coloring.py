"""Cole-Vishkin color reduction and MIS on paths / linear forests.

The symmetry-breaking machinery of Lemma 5.3 needs two classic tools on
path-shaped structures (the neighborhoods arising in outerplanar graphs
induce linear forests):

* reduce an arbitrary proper coloring to a 3-coloring in
  ``O(log* n)`` synchronous steps (Cole-Vishkin bit tricks, then the
  standard 6 -> 3 class elimination), and
* extract a maximal independent set from a 3-coloring in 3 steps.

The functions operate on an explicit linear forest (each node has at most
two neighbors) and return, along with their output, the number of
synchronous steps a distributed execution would need — each step is a
single exchange with direct neighbors, so the paper's Remark 1 converts
it to ``O(D)`` real rounds per step when nodes are parts.

Scheduling: these are synchronous-step *simulations* whose costs enter
the ledger as exact pipelined charges — no per-round node loop exists
here, so the event-driven scheduler has nothing to skip (the charge
path is already O(1) per step).
"""

from __future__ import annotations

from ..planar.graph import Graph, NodeId

__all__ = [
    "is_proper_coloring",
    "cole_vishkin_3coloring",
    "mis_from_coloring",
    "log_star",
]


def log_star(n: int) -> int:
    """The iterated logarithm (number of log2 application to reach <= 1)."""
    count = 0
    x = float(n)
    while x > 1.0:
        import math

        x = math.log2(x)
        count += 1
    return count


def is_proper_coloring(graph: Graph, colors: dict[NodeId, int]) -> bool:
    """True iff adjacent nodes always have different colors."""
    return all(colors[u] != colors[v] for u, v in graph.edges())


def _check_linear_forest(graph: Graph) -> None:
    for v in graph.nodes():
        if graph.degree(v) > 2:
            raise ValueError(f"not a linear forest: {v!r} has degree {graph.degree(v)}")
    n = graph.num_nodes
    if graph.num_edges > max(0, n - 1):
        raise ValueError("not a linear forest: contains a cycle")
    # A degree-<=2 graph with <= n-1 edges could still contain a cycle plus
    # isolated vertices; check components explicitly.
    for comp in graph.connected_components():
        sub_edges = sum(1 for u, v in graph.edges() if u in comp)
        if sub_edges >= len(comp) and len(comp) > 1:
            raise ValueError("not a linear forest: contains a cycle")


def cole_vishkin_3coloring(
    graph: Graph, colors: dict[NodeId, int]
) -> tuple[dict[NodeId, int], int]:
    """Reduce a proper coloring of a linear forest to colors ``{0, 1, 2}``.

    Returns the new coloring and the number of synchronous steps used;
    the step count is ``O(log* C)`` for an initial palette of size ``C``
    plus the constant 6 -> 3 elimination.
    """
    _check_linear_forest(graph)
    if not is_proper_coloring(graph, colors):
        raise ValueError("initial coloring is not proper")
    colors = dict(colors)
    steps = 0

    # Orient each path: successor = the neighbor with larger ID (unique
    # because degree <= 2 gives at most one larger and one smaller
    # neighbor only on monotone paths; instead, orient by scanning each
    # path from a fixed endpoint so every node has <= 1 successor).
    successor: dict[NodeId, NodeId | None] = {v: None for v in graph.nodes()}
    visited: set[NodeId] = set()
    for start in graph.nodes():
        if start in visited or graph.degree(start) == 2:
            continue
        # endpoint (degree 0 or 1) of a path: walk along it
        prev = None
        cur = start
        while True:
            visited.add(cur)
            nxts = [u for u in graph.neighbors(cur) if u != prev]
            if not nxts:
                break
            successor[cur] = nxts[0]
            prev, cur = cur, nxts[0]

    # Cole-Vishkin bit reduction until the palette fits in {0..5}.
    while max(colors.values(), default=0) >= 6:
        new_colors: dict[NodeId, int] = {}
        for v in graph.nodes():
            succ = successor[v]
            own = colors[v]
            other = colors[succ] if succ is not None else (0 if own != 0 else 1)
            diff_bit = (own ^ other) & -(own ^ other)  # lowest set bit
            i = diff_bit.bit_length() - 1
            new_colors[v] = 2 * i + ((own >> i) & 1)
        colors = new_colors
        steps += 1
        if not is_proper_coloring(graph, colors):  # pragma: no cover - invariant
            raise AssertionError("Cole-Vishkin step broke properness")

    # Eliminate classes 5, 4, 3 one synchronous step each.
    for c in (5, 4, 3):
        step_colors = dict(colors)
        for v in graph.nodes():
            if colors[v] != c:
                continue
            forbidden = {colors[u] for u in graph.neighbors(v)}
            step_colors[v] = min(x for x in (0, 1, 2) if x not in forbidden)
        colors = step_colors
        steps += 1
        if not is_proper_coloring(graph, colors):  # pragma: no cover - invariant
            raise AssertionError("class elimination broke properness")
    return colors, steps


def mis_from_coloring(
    graph: Graph, colors: dict[NodeId, int], palette: int = 3
) -> tuple[set[NodeId], int]:
    """A maximal independent set from a proper coloring, by color classes.

    ``palette`` synchronous steps: in step ``c`` every still-free node of
    color ``c`` with no neighbor already in the MIS joins it.
    """
    if not is_proper_coloring(graph, colors):
        raise ValueError("coloring is not proper")
    mis: set[NodeId] = set()
    for c in range(palette):
        for v in graph.nodes():
            if colors[v] == c and not any(u in mis for u in graph.neighbors(v)):
                mis.add(v)
    # maximality + independence are structural; assert cheaply
    for u, v in graph.edges():
        if u in mis and v in mis:  # pragma: no cover - invariant
            raise AssertionError("MIS not independent")
    for v in graph.nodes():
        if v not in mis and not any(u in mis for u in graph.neighbors(v)):
            raise AssertionError("MIS not maximal")  # pragma: no cover - invariant
    return mis, palette
